"""Request-scoped trace contexts propagated across serving layers.

This module is the spine of end-to-end request tracing: a
:class:`TraceContext` is minted at server ingress (or adopted from an
incoming W3C ``traceparent`` header), carried through admission control,
the coalescer, the cache, and — via :meth:`TraceContext.to_payload` —
serialized into ``ProcessPoolExecutor`` shard workers.

Design constraints, in priority order:

1. **Disabled cost is near zero.**  When no tracer is installed the only
   per-request work is minting two random ids and a handful of
   ``perf_counter`` reads (see ``benchmarks/bench_obs_overhead.py`` for
   the gated budget).  Span emission happens only behind a ``tracer is
   not None`` check.
2. **No retention.**  :class:`Tracer` writes span records straight to
   its sink; a long-running server never accumulates span state.
3. **Determinism of results.**  Trace ids never feed into any numeric
   path; traced and untraced runs produce bit-identical bodies.

Span records share the JSONL schema emitted by
:class:`repro.obs.recorder.Recorder` (``type: "span"``) with four
additional fields: ``trace_id``, ``span_id``, ``parent_id`` and
(optionally) ``links`` — so the existing ``repro-hc trace convert``
Chrome exporter and the new ``repro-hc trace query`` command both read
the same files.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

from .events import jsonable
from .sinks import JsonlSink, Sink

__all__ = [
    "TraceContext",
    "RequestTrace",
    "Tracer",
    "current_trace",
    "current_tracer",
    "set_tracer",
    "trace_scope",
    "tracing",
    "TIMING_STAGES",
]

# Stage names surfaced in ``debug.timings`` and slow-request records, in
# pipeline order.  ``other_s`` absorbs scheduling slop so the stages sum
# to the measured total by construction.
TIMING_STAGES = (
    "queue_wait_s",
    "coalesce_linger_s",
    "cache_s",
    "kernel_s",
    "render_s",
    "other_s",
)

# Ids come straight from the OS: ``os.urandom(n).hex()`` is cheaper
# than a locked Random.getrandbits + hex format, needs no lock, and is
# fork-safe — pool workers never inherit a parent's RNG state and mint
# colliding ids.
_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16
_HEX = set("0123456789abcdef")


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def _is_hex(text: str) -> bool:
    return all(ch in _HEX for ch in text)


class TraceContext:
    """Immutable (trace_id, span_id, parent_id) triple.

    ``trace_id`` is 32 lowercase hex chars, ``span_id`` 16; both follow
    the W3C Trace Context wire format so ``to_traceparent`` round-trips
    through any compliant proxy.

    A ``__slots__`` class rather than a frozen dataclass: every request
    constructs one of these (plus a child per propagation hop), and the
    frozen-dataclass ``object.__setattr__``-per-field init costs ~3x a
    plain init on this hot path.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context.

        Both ids come from one ``urandom`` draw — this sits on the serve
        hot path (every request mints a context for its
        ``X-Repro-Trace-Id`` header, traced or not).
        """
        both = os.urandom(24).hex()
        return cls(trace_id=both[:32], span_id=both[32:])

    def child(self) -> "TraceContext":
        """A new span context under this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; malformed input yields None.

        Tolerance here is deliberate: a bad header from a client must
        never fail the request, it just starts a fresh trace.
        """
        if not header or not isinstance(header, str):
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, span_id = parts[0], parts[1], parts[2]
        if version == "ff" or len(version) != 2 or not _is_hex(version):
            return None
        if len(trace_id) != 32 or not _is_hex(trace_id) or trace_id == _ZERO_TRACE:
            return None
        if len(span_id) != 16 or not _is_hex(span_id) or span_id == _ZERO_SPAN:
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    def to_payload(self) -> dict:
        """Plain-dict form safe to pickle into pool workers."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "TraceContext | None":
        if not payload:
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_id=payload.get("parent_id"),
        )

    def link(self) -> dict:
        """Span-link form used by fan-in spans (batched kernels)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


class RequestTrace:
    """Per-request stage-timing accumulator.

    Created at server ingress, threaded through the request pipeline,
    and asked for a breakdown at response time.  Stage durations are
    accumulated with :meth:`add`; :meth:`timings` fills ``other_s`` with
    the unattributed remainder so the stages always sum to the total.
    """

    __slots__ = ("context", "started_at", "t0", "stages", "remote_parent")

    def __init__(self, context: TraceContext, *, remote_parent: bool = False):
        self.context = context
        self.started_at = time.time()
        self.t0 = time.perf_counter()
        self.stages: dict[str, float] = {}
        self.remote_parent = remote_parent

    @classmethod
    def begin(cls, traceparent: str | None = None) -> "RequestTrace":
        """Start a request trace, adopting an incoming traceparent if valid."""
        remote = TraceContext.from_traceparent(traceparent)
        if remote is not None:
            return cls(remote.child(), remote_parent=True)
        return cls(TraceContext.new())

    def add(self, stage: str, seconds: float) -> None:
        if seconds > 0.0:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def elapsed(self) -> float:
        return time.perf_counter() - self.t0

    def timings(self, total_s: float) -> dict[str, float]:
        """Stage breakdown summing to ``total_s`` (``other_s`` absorbs slop)."""
        out = {stage: self.stages.get(stage, 0.0) for stage in TIMING_STAGES}
        attributed = sum(out.values())
        out["other_s"] = max(0.0, total_s - attributed)
        return out


class Tracer:
    """Writes span records to a sink without retaining them.

    Unlike :class:`repro.obs.recorder.Recorder` (which accumulates
    events for post-run summaries), a Tracer is built for long-running
    servers: every span goes straight to the sink.  Timestamps are
    wall-clock (``time.time()``) so spans emitted by separate processes
    line up on one timeline.
    """

    def __init__(self, sink: Sink, *, process: str | None = None):
        self.sink = sink
        self.process = process or f"pid-{os.getpid()}"
        self.path = getattr(sink, "path", None)
        self._lock = threading.Lock()
        self._index = 0

    def emit_span(
        self,
        name: str,
        context: TraceContext,
        *,
        wall_s: float,
        start: float | None = None,
        cpu_s: float = 0.0,
        meta: dict | None = None,
        links: list[dict] | tuple[dict, ...] = (),
        error: str | None = None,
    ) -> None:
        """Emit one completed span record."""
        record = {
            "type": "span",
            "name": name,
            "trace_id": context.trace_id,
            "span_id": context.span_id,
            "parent_id": context.parent_id,
            "start": float(start if start is not None else time.time() - wall_s),
            "wall_s": float(wall_s),
            "cpu_s": float(cpu_s),
            "pid": os.getpid(),
            "process": self.process,
            "meta": jsonable(meta or {}),
        }
        if links:
            record["links"] = [dict(link) for link in links]
        if error is not None:
            record["error"] = error
        with self._lock:
            record["index"] = self._index
            self._index += 1
            self.sink.emit(record)

    @contextmanager
    def span(
        self,
        name: str,
        context: TraceContext,
        *,
        meta: dict | None = None,
        links: list[dict] | tuple[dict, ...] = (),
    ):
        """Context manager timing a block and emitting it as a span."""
        start = time.time()
        t0 = time.perf_counter()
        c0 = time.process_time()
        error: str | None = None
        try:
            yield context
        except BaseException as exc:  # noqa: BLE001 - recorded, then re-raised
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.emit_span(
                name,
                context,
                wall_s=time.perf_counter() - t0,
                start=start,
                cpu_s=time.process_time() - c0,
                meta=meta,
                links=links,
                error=error,
            )

    def close(self) -> None:
        self.sink.close()


def append_span_record(path: str, record: dict) -> None:
    """Append one span record to a JSONL file, one atomic write.

    Used by pool workers that share a span file with the parent: the
    line is written with a single ``write`` on an ``O_APPEND`` handle,
    which POSIX keeps atomic for writes under ``PIPE_BUF``.
    """
    line = json.dumps(jsonable(record), sort_keys=True) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)


# --- ambient trace context + process-wide tracer ----------------------------
#
# Mirrors the metrics-gate pattern in ``repro.obs.metrics``: library code
# checks one module global (``current_tracer() is None`` on the disabled
# path) and an optional contextvar for the ambient trace.

_trace_var: ContextVar[TraceContext | None] = ContextVar("repro_trace", default=None)
_tracer: Tracer | None = None


def current_trace() -> TraceContext | None:
    """The ambient TraceContext for this task/thread, if any."""
    return _trace_var.get()


@contextmanager
def trace_scope(context: TraceContext):
    """Bind ``context`` as the ambient trace for the enclosed block."""
    token = _trace_var.set(context)
    try:
        yield context
    finally:
        _trace_var.reset(token)


def current_tracer() -> Tracer | None:
    """The process-wide tracer, or None when tracing is disabled."""
    return _tracer


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with None) the process-wide tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def tracing(path: str, *, process: str | None = None):
    """Install a JSONL-backed process tracer for the enclosed block.

    >>> with tracing("spans.jsonl") as tracer:
    ...     ctx = TraceContext.new()
    ...     with tracer.span("work", ctx):
    ...         pass
    """
    tracer = Tracer(JsonlSink(path), process=process)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
