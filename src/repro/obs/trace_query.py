"""Query JSONL span sinks by trace id, latency, or recency.

Backs the ``repro-hc trace query`` CLI.  The loader is deliberately
forgiving about a *partial final line*: a server killed mid-write (e.g.
SIGTERM during a traced request) leaves at most one truncated record at
the end of the file, and that must not make the whole file unreadable.
Malformed lines elsewhere still raise — they indicate real corruption,
not an interrupted write.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "TraceView",
    "load_spans",
    "group_traces",
    "query_traces",
    "format_trace",
]


def load_spans(path: str) -> list[dict]:
    """Load span records from a JSONL file.

    Returns only ``type == "span"`` records that carry a ``trace_id``.
    A truncated final line is skipped; malformed interior lines raise
    ``ValueError`` naming the line number.
    """
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # interrupted final write; everything before it is intact
            raise ValueError(f"{path}:{number}: malformed span record") from None
        if isinstance(record, dict) and record.get("type") == "span":
            if record.get("trace_id"):
                spans.append(record)
    return spans


@dataclass
class TraceView:
    """All spans sharing one trace id, ordered for display."""

    trace_id: str
    spans: list[dict] = field(default_factory=list)

    @property
    def root(self) -> dict | None:
        """The root span: no parent, or a parent not present in the file
        (i.e. the parent lives in an upstream service)."""
        span_ids = {span.get("span_id") for span in self.spans}
        candidates = [
            span
            for span in self.spans
            if span.get("parent_id") is None or span.get("parent_id") not in span_ids
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda span: float(span.get("wall_s", 0.0)))

    @property
    def total_s(self) -> float:
        root = self.root
        if root is not None:
            return float(root.get("wall_s", 0.0))
        return max((float(span.get("wall_s", 0.0)) for span in self.spans), default=0.0)

    @property
    def start(self) -> float:
        return min((float(span.get("start", 0.0)) for span in self.spans), default=0.0)


def group_traces(spans: list[dict]) -> list[TraceView]:
    """Group spans by trace id, preserving first-seen order."""
    by_id: dict[str, TraceView] = {}
    for span in spans:
        trace_id = span["trace_id"]
        view = by_id.get(trace_id)
        if view is None:
            view = by_id[trace_id] = TraceView(trace_id=trace_id)
        view.spans.append(span)
    return list(by_id.values())


def query_traces(
    spans: list[dict],
    *,
    trace_id: str | None = None,
    slower_than_s: float | None = None,
    last: int | None = None,
) -> list[TraceView]:
    """Filter grouped traces; filters compose (AND)."""
    views = group_traces(spans)
    if trace_id is not None:
        views = [view for view in views if view.trace_id.startswith(trace_id)]
    if slower_than_s is not None:
        views = [view for view in views if view.total_s >= slower_than_s]
    views.sort(key=lambda view: view.start)
    if last is not None and last >= 0:
        views = views[len(views) - min(last, len(views)) :]
    return views


def _children(view: TraceView) -> dict[str | None, list[dict]]:
    tree: dict[str | None, list[dict]] = {}
    for span in view.spans:
        tree.setdefault(span.get("parent_id"), []).append(span)
    for siblings in tree.values():
        siblings.sort(key=lambda span: (float(span.get("start", 0.0)), span.get("index", 0)))
    return tree


def format_trace(view: TraceView) -> str:
    """Render one trace as an indented span tree with timings."""
    lines = [f"trace {view.trace_id}  total {view.total_s * 1e3:.2f} ms"]
    tree = _children(view)
    span_ids = {span.get("span_id") for span in view.spans}
    roots = [
        span
        for span in view.spans
        if span.get("parent_id") is None or span.get("parent_id") not in span_ids
    ]
    seen: set[str] = set()

    def walk(span: dict, depth: int) -> None:
        span_id = span.get("span_id", "?")
        if span_id in seen:
            return
        seen.add(span_id)
        indent = "  " * depth
        wall_ms = float(span.get("wall_s", 0.0)) * 1e3
        extras = []
        meta = span.get("meta") or {}
        for key in ("endpoint", "status", "source", "outcome", "batch_size", "attempt"):
            if key in meta:
                extras.append(f"{key}={meta[key]}")
        links = span.get("links") or []
        if links:
            extras.append(f"links={len(links)}")
        suffix = f"  [{' '.join(extras)}]" if extras else ""
        lines.append(f"{indent}- {span.get('name', '?')}  {wall_ms:.2f} ms  span={span_id}{suffix}")
        timings = meta.get("timings")
        if isinstance(timings, dict):
            for stage, seconds in timings.items():
                lines.append(f"{indent}    {stage:<18} {float(seconds) * 1e3:10.3f} ms")
        for child in tree.get(span_id, []):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda span: float(span.get("start", 0.0))):
        walk(root, 0)
    return "\n".join(lines)
