"""Aggregated span statistics: the ``repro-hc profile`` table.

:func:`summarize` folds a recorder's closed spans into one row per
span name — count, total/mean wall time, p50/p95/p99/max, CPU total —
sorted by total wall time so the hottest path tops the table.  The
result renders as an aligned text table (:meth:`SpanSummary.table`)
or a JSON-safe dict (:meth:`SpanSummary.to_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import jsonable
from .recorder import Recorder, current_recorder

__all__ = ["SpanStats", "SpanSummary", "summarize", "summary"]


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list (q in [0, 1])."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class SpanStats:
    """Aggregate statistics of every span sharing one name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    cpu_s: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
            "cpu_s": self.cpu_s,
        }


@dataclass(frozen=True)
class SpanSummary:
    """Per-span-name aggregation of one recording session.

    ``rows`` is sorted by total wall time, descending; ``counters``
    carries the recorder's accumulated counter totals.
    """

    rows: tuple[SpanStats, ...]
    counters: dict

    def __len__(self) -> int:
        return len(self.rows)

    def row(self, name: str) -> SpanStats:
        """The stats row for an exact span name (KeyError if absent)."""
        for stats in self.rows:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def names(self) -> tuple[str, ...]:
        return tuple(stats.name for stats in self.rows)

    def covers(self, prefix: str) -> bool:
        """True when any span name matches ``prefix`` or ``prefix.*``."""
        return any(
            stats.name == prefix or stats.name.startswith(prefix + ".")
            for stats in self.rows
        )

    def to_dict(self) -> dict:
        return {
            "spans": [stats.to_dict() for stats in self.rows],
            "counters": {k: jsonable(v) for k, v in self.counters.items()},
        }

    def table(self) -> str:
        """Aligned text table, hottest span first (times in ms)."""
        if not self.rows:
            return "(no spans recorded)"
        name_w = max(len("span"), max(len(s.name) for s in self.rows))
        header = (
            f"{'span'.ljust(name_w)}  {'count':>5}  {'total':>9}  "
            f"{'mean':>9}  {'p50':>9}  {'p95':>9}  {'p99':>9}  "
            f"{'max':>9}  {'cpu':>9}"
        )
        lines = [header, "-" * len(header)]
        for s in self.rows:
            lines.append(
                f"{s.name.ljust(name_w)}  {s.count:>5d}  "
                f"{s.total_s * 1e3:>7.2f}ms  {s.mean_s * 1e3:>7.2f}ms  "
                f"{s.p50_s * 1e3:>7.2f}ms  {s.p95_s * 1e3:>7.2f}ms  "
                f"{s.p99_s * 1e3:>7.2f}ms  "
                f"{s.max_s * 1e3:>7.2f}ms  {s.cpu_s * 1e3:>7.2f}ms"
            )
        if self.counters:
            lines.append("")
            for name in sorted(self.counters):
                lines.append(f"counter {name} = {self.counters[name]:g}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


def summarize(recorder: Recorder) -> SpanSummary:
    """Aggregate a recorder's spans into a :class:`SpanSummary`."""
    buckets: dict[str, list[float]] = {}
    cpu: dict[str, float] = {}
    for event in recorder.events:
        buckets.setdefault(event.name, []).append(event.wall_s)
        cpu[event.name] = cpu.get(event.name, 0.0) + event.cpu_s
    rows = []
    for name, walls in buckets.items():
        ordered = sorted(walls)
        total = sum(ordered)
        rows.append(
            SpanStats(
                name=name,
                count=len(ordered),
                total_s=total,
                mean_s=total / len(ordered),
                p50_s=_percentile(ordered, 0.50),
                p95_s=_percentile(ordered, 0.95),
                p99_s=_percentile(ordered, 0.99),
                max_s=ordered[-1],
                cpu_s=cpu[name],
            )
        )
    rows.sort(key=lambda s: s.total_s, reverse=True)
    return SpanSummary(rows=tuple(rows), counters=dict(recorder.counters))


def summary(recorder: Recorder | None = None) -> SpanSummary:
    """Aggregate the given recorder — or the ambient one — into a table.

    With no recorder argument and no active recording, returns an empty
    summary (zero rows) rather than raising, so reporting code can run
    unconditionally.

    Examples
    --------
    >>> from repro.obs import recording, span, summary
    >>> with recording() as rec:
    ...     for _ in range(3):
    ...         with span("demo.step"):
    ...             pass
    >>> summary(rec).row("demo.step").count
    3
    """
    if recorder is None:
        recorder = current_recorder()
    if recorder is None:
        return SpanSummary(rows=(), counters={})
    return summarize(recorder)
