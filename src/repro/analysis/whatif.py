"""What-if studies: heterogeneity impact of environment edits.

Each function perturbs an environment (drop or add task types /
machines), recomputes the three measures, and reports the deltas — the
"what-if studies" application from the paper's introduction.  All
functions leave the input untouched (the core matrix classes are
copy-on-edit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.environment import ECSMatrix, ETCMatrix
from ..measures.report import HeterogeneityProfile, characterize

__all__ = [
    "WhatIfEntry",
    "whatif_drop_tasks",
    "whatif_drop_machines",
    "whatif_add_task",
    "whatif_add_machine",
]


@dataclass(frozen=True)
class WhatIfEntry:
    """The measure shift caused by one hypothetical edit.

    Attributes
    ----------
    description : str
        Human-readable edit, e.g. ``"drop task 436.cactusADM"``.
    before, after : HeterogeneityProfile
        Full profiles around the edit.
    """

    description: str
    before: HeterogeneityProfile
    after: HeterogeneityProfile

    @property
    def delta_mph(self) -> float:
        return self.after.mph - self.before.mph

    @property
    def delta_tdh(self) -> float:
        return self.after.tdh - self.before.tdh

    @property
    def delta_tma(self) -> float:
        return self.after.tma - self.before.tma

    def summary(self) -> str:
        return (
            f"{self.description}: "
            f"MPH {self.before.mph:.3f}→{self.after.mph:.3f} "
            f"({self.delta_mph:+.3f}), "
            f"TDH {self.before.tdh:.3f}→{self.after.tdh:.3f} "
            f"({self.delta_tdh:+.3f}), "
            f"TMA {self.before.tma:.3f}→{self.after.tma:.3f} "
            f"({self.delta_tma:+.3f})"
        )


def _wrap(matrix) -> ETCMatrix | ECSMatrix:
    if isinstance(matrix, (ETCMatrix, ECSMatrix)):
        return matrix
    return ECSMatrix(matrix)


def whatif_drop_tasks(
    matrix, tasks: Iterable[int | str] | None = None
) -> list[WhatIfEntry]:
    """Effect of removing each task type (one at a time).

    ``tasks`` restricts the study to the given names/indices; the
    default tries every task type.  Single-task environments cannot
    drop anything and yield an empty list.
    """
    env = _wrap(matrix)
    if env.n_tasks < 2:
        return []
    before = characterize(env)
    candidates = list(tasks) if tasks is not None else list(env.task_names)
    entries = []
    for task in candidates:
        name = env.task_names[env.task_index(task)]
        after = characterize(env.drop_tasks([task]))
        entries.append(
            WhatIfEntry(
                description=f"drop task {name}", before=before, after=after
            )
        )
    return entries


def whatif_drop_machines(
    matrix, machines: Iterable[int | str] | None = None
) -> list[WhatIfEntry]:
    """Effect of removing each machine (one at a time)."""
    env = _wrap(matrix)
    if env.n_machines < 2:
        return []
    before = characterize(env)
    candidates = (
        list(machines) if machines is not None else list(env.machine_names)
    )
    entries = []
    for machine in candidates:
        name = env.machine_names[env.machine_index(machine)]
        after = characterize(env.drop_machines([machine]))
        entries.append(
            WhatIfEntry(
                description=f"drop machine {name}",
                before=before,
                after=after,
            )
        )
    return entries


def whatif_add_task(matrix, name: str, row: Sequence[float]) -> WhatIfEntry:
    """Effect of adding one task type with the given matrix row.

    The row is in the same representation as ``matrix`` (ETC row for an
    ETC environment, ECS row otherwise).
    """
    env = _wrap(matrix)
    return WhatIfEntry(
        description=f"add task {name}",
        before=characterize(env),
        after=characterize(env.add_task(name, row)),
    )


def whatif_add_machine(matrix, name: str, column: Sequence[float]) -> WhatIfEntry:
    """Effect of adding one machine with the given matrix column."""
    env = _wrap(matrix)
    return WhatIfEntry(
        description=f"add machine {name}",
        before=characterize(env),
        after=characterize(env.add_machine(name, column)),
    )
