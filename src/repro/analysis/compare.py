"""Comparing heterogeneous computing environments.

The paper's stated purpose is "to provide heterogeneity measures that
can be used as a standard way to compare different heterogeneous
computing environments"; this module is that comparison layer:

* :func:`comparison_table` / :func:`format_table` — the Fig. 2 / 6–8
  presentation (named environments → measure table);
* :func:`measure_distance` — distance between two environments in
  (MPH, TDH, TMA) space;
* :func:`equivalent_up_to_scaling` — the *exact* equivalence the
  standard form induces: two environments are scaling-equivalent
  (``B = D1 A D2``) iff their standard forms coincide, i.e. they
  describe the same affinity structure in different units/weights;
* :func:`rank_by_similarity` — order a corpus by measure distance to a
  reference environment.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..measures.report import characterize
from ..normalize.standard_form import standardize

__all__ = [
    "comparison_table",
    "format_table",
    "measure_distance",
    "equivalent_up_to_scaling",
    "rank_by_similarity",
]

_DEFAULT_COLUMNS = ("mph", "tdh", "tma")


def comparison_table(
    environments: Mapping[str, object],
    *,
    columns: Sequence[str] = _DEFAULT_COLUMNS,
) -> list[dict]:
    """Characterize several environments into table rows.

    Parameters
    ----------
    environments : mapping of name → matrix
        Each value is anything :func:`repro.measures.characterize`
        accepts.
    columns : sequence of str
        Attributes of :class:`~repro.measures.HeterogeneityProfile`
        to include (e.g. ``("mph", "machine_r", "machine_g",
        "machine_cov")`` reproduces the Fig. 2 layout).

    Returns
    -------
    list of dict
        One row per environment with ``"name"`` plus the requested
        columns.
    """
    rows = []
    for name, matrix in environments.items():
        profile = characterize(matrix)
        row: dict = {"name": name}
        for column in columns:
            row[column] = getattr(profile, column)
        rows.append(row)
    return rows


def format_table(rows: Sequence[Mapping], *, precision: int = 4) -> str:
    """Render rows (from :func:`comparison_table`) as aligned text.

    Floats are fixed-precision; the first column is left-aligned,
    numeric columns right-aligned.
    """
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[fmt(row[c]) for c in columns] for row in rows]
    widths = [
        max([len(columns[i])] + [len(line[i]) for line in rendered])
        for i in range(len(columns))
    ]
    header = "  ".join(
        columns[i].ljust(widths[i]) if i == 0 else columns[i].rjust(widths[i])
        for i in range(len(columns))
    )
    lines = [header, "  ".join("-" * w for w in widths)]
    for line in rendered:
        lines.append(
            "  ".join(
                line[i].ljust(widths[i]) if i == 0 else line[i].rjust(widths[i])
                for i in range(len(columns))
            )
        )
    return "\n".join(lines)


def measure_distance(a, b, *, weights: Sequence[float] = (1.0, 1.0, 1.0)) -> float:
    """Weighted Euclidean distance between two environments in
    (MPH, TDH, TMA) space.

    Since all three measures live on comparable [0, 1]-ish scales, the
    unweighted distance is a reasonable default similarity notion;
    ``weights`` re-balances the axes when one aspect matters more.

    Examples
    --------
    >>> measure_distance([[1.0, 1.0], [1.0, 1.0]],
    ...                  [[1.0, 1.0], [1.0, 1.0]])
    0.0
    """
    pa, pb = characterize(a), characterize(b)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (3,) or (w < 0).any():
        raise ValueError("weights must be three non-negative numbers")
    diff = np.array(
        [pa.mph - pb.mph, pa.tdh - pb.tdh, pa.tma - pb.tma]
    )
    return float(np.sqrt(np.sum(w * diff**2)))


def equivalent_up_to_scaling(a, b, *, tol: float = 1e-6) -> bool:
    """True when ``b`` is a row/column rescaling of ``a``.

    ``B = D1 A D2`` for positive diagonal ``D1, D2`` holds iff the two
    standard forms coincide (Theorem 1's uniqueness) — the environments
    have identical affinity structure and differ only in machine speeds
    / task difficulties / units.  Matrices of different shapes are
    never equivalent; zero patterns are compared under the eq.-9 limit.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.array([[1.0, 2.0], [3.0, 1.0]])
    >>> b = 5.0 * a * np.array([[2.0], [0.5]])    # row scaling + units
    >>> equivalent_up_to_scaling(a, b)
    True
    >>> c = a.copy(); c[0, 0] = 9.0               # changed cross ratio
    >>> equivalent_up_to_scaling(a, c)
    False
    """
    arr_a = np.asarray(a, dtype=np.float64)
    arr_b = np.asarray(b, dtype=np.float64)
    if arr_a.shape != arr_b.shape:
        return False
    std_a = standardize(arr_a, zeros="limit").matrix
    std_b = standardize(arr_b, zeros="limit").matrix
    return bool(np.allclose(std_a, std_b, atol=tol))


def rank_by_similarity(
    reference, candidates: Mapping[str, object],
    *, weights: Sequence[float] = (1.0, 1.0, 1.0),
) -> list[tuple[str, float]]:
    """Order named environments by measure distance to ``reference``.

    Returns ``[(name, distance), ...]`` ascending — the first entry is
    the candidate most like the reference.  The intended use is exactly
    the paper's heuristic-selection workflow: find the studied
    environment nearest to yours and adopt its known-good mapper.
    """
    ranked = [
        (name, measure_distance(reference, env, weights=weights))
        for name, env in candidates.items()
    ]
    ranked.sort(key=lambda pair: pair[1])
    return ranked
