"""Sensitivity of the measures to ETC estimation noise.

ETC values come from profiling, benchmarking, or user estimates (paper
Section I), all of which carry error.  A usable heterogeneity measure
must degrade gracefully under that error; this module quantifies it by
multiplicative log-normal perturbation: each positive entry becomes
``x * exp(N(0, σ))`` and the three measures are re-computed over many
trials.

:func:`sensitivity_study` returns, per noise level, the mean absolute
shift and the worst shift of each measure — the robustness curve the
E-ablation benchmark tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import as_ecs_array, check_positive_int
from ..generate._rng import resolve_rng
from ..generate.ensembles import perturb
from ..obs import current_recorder, span as _obs_span
from ..measures.machine_performance import mph as _mph
from ..measures.task_difficulty import tdh as _tdh
from ..measures.affinity import tma as _tma

__all__ = ["SensitivityResult", "sensitivity_study"]

_MEASURES = ("mph", "tdh", "tma")


@dataclass(frozen=True)
class SensitivityResult:
    """Robustness curves of the three measures under estimation noise.

    Attributes
    ----------
    noise_levels : numpy.ndarray, shape (L,)
        The log-space σ values swept.
    baseline : dict
        Unperturbed measure values.
    mean_shift, max_shift : numpy.ndarray, shape (L, 3)
        Mean/max absolute deviation from baseline over the trials, in
        measure order (mph, tdh, tma).
    trials : int
    """

    noise_levels: np.ndarray
    baseline: dict
    mean_shift: np.ndarray
    max_shift: np.ndarray
    trials: int

    def table(self) -> str:
        """Render the robustness curve as aligned text."""
        lines = [
            "sigma    mean|dMPH|  mean|dTDH|  mean|dTMA|   "
            "max|dMPH|  max|dTDH|  max|dTMA|"
        ]
        for level, mean, worst in zip(
            self.noise_levels, self.mean_shift, self.max_shift
        ):
            lines.append(
                f"{level:<7.3f}  {mean[0]:.4f}      {mean[1]:.4f}      "
                f"{mean[2]:.4f}       {worst[0]:.4f}     {worst[1]:.4f}"
                f"     {worst[2]:.4f}"
            )
        return "\n".join(lines)


def _perturbed_measures(args: tuple) -> tuple:
    """Module-level worker (picklable): measures of one noisy draw."""
    ecs, sigma, item_seed = args
    noisy = perturb(ecs, sigma, seed=item_seed)
    return (_mph(noisy), _tdh(noisy), _tma(noisy, zeros="limit"))


def sensitivity_study(
    matrix,
    *,
    noise_levels: Sequence[float] = (0.01, 0.05, 0.1, 0.2),
    trials: int = 20,
    seed=0,
    n_jobs: int | None = None,
    batched: bool = True,
) -> SensitivityResult:
    """Measure-shift statistics under multiplicative estimation noise.

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment to perturb (interpreted as ECS when raw).
    noise_levels : sequence of float
        Log-space standard deviations to sweep (0.1 ≈ ±10% typical
        estimation error).
    trials : int
        Perturbation draws per level.
    seed : int or Generator
        Randomness source (deterministic by default).
    n_jobs : int, optional
        Process-pool width for the scalar path (1/None = serial, -1 =
        all CPUs); per-trial seeds are derived up front so the result
        is identical regardless.
    batched : bool
        Characterize each level's trial stack through the vectorized
        :func:`repro.batch.characterize_ensemble` kernels (default)
        instead of the per-trial scalar loop.  The perturbation draws
        are identical either way (same derived seeds), and the two
        paths agree to ≤ 1e-10 per trial.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> result = sensitivity_study(rng.uniform(1, 5, (6, 4)), trials=5)
    >>> bool((result.mean_shift[0] <= result.mean_shift[-1] + 0.2).all())
    True
    """
    from ..core.environment import ECSMatrix, ETCMatrix

    if isinstance(matrix, ETCMatrix):
        ecs = matrix.to_ecs().values
    elif isinstance(matrix, ECSMatrix):
        ecs = matrix.values
    else:
        ecs = as_ecs_array(matrix)
    trials = check_positive_int(trials, name="trials")
    rng = resolve_rng(seed)
    levels = np.asarray(noise_levels, dtype=np.float64)
    if levels.ndim != 1 or levels.size == 0 or (levels <= 0).any():
        raise ValueError("noise_levels must be a non-empty positive sequence")

    baseline = {
        "mph": _mph(ecs),
        "tdh": _tdh(ecs),
        "tma": _tma(ecs, zeros="limit"),
    }
    base_vec = np.array([baseline[m] for m in _MEASURES])
    from .._parallel import parallel_map

    rec = current_recorder()
    if rec is not None:
        rec.counter("sensitivity.trials", int(levels.size) * trials)
    mean_shift = np.empty((levels.size, 3))
    max_shift = np.empty((levels.size, 3))
    for li, sigma in enumerate(levels):
        item_seeds = [int(rng.integers(0, 2**63 - 1)) for _ in range(trials)]
        with _obs_span(
            "analysis.sensitivity_level", sigma=float(sigma), trials=trials
        ):
            if batched:
                from ..batch import characterize_ensemble

                stack = np.stack(
                    [perturb(ecs, float(sigma), seed=s) for s in item_seeds]
                )
                measured = characterize_ensemble(
                    stack, tma_fallback="limit"
                ).measures
            else:
                jobs = [(ecs, float(sigma), s) for s in item_seeds]
                measured = np.asarray(
                    parallel_map(_perturbed_measures, jobs, n_jobs=n_jobs)
                )
        shifts = np.abs(measured - base_vec[None, :])
        mean_shift[li] = shifts.mean(axis=0)
        max_shift[li] = shifts.max(axis=0)
    return SensitivityResult(
        noise_levels=levels,
        baseline=baseline,
        mean_shift=mean_shift,
        max_shift=max_shift,
        trials=trials,
    )
