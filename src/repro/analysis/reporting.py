"""Full environment reports: one call, one human-readable document.

:func:`environment_report` assembles everything the library knows about
an HC environment into a Markdown document: the three measures with the
Section II-D comparison statistics, the regime description, the
affinity groups, per-edit what-if highlights, and the standard-form
diagnostics.  This is the "downstream user" entry point — the function
a capacity-planning script calls to turn an ETC matrix into a report a
human can act on.
"""

from __future__ import annotations

from ..core.environment import ECSMatrix, ETCMatrix
from ..measures.clusters import affinity_clusters
from ..measures.report import characterize
from .regimes import describe_regime
from .whatif import whatif_drop_machines, whatif_drop_tasks

__all__ = ["environment_report"]


def _wrap(matrix) -> ETCMatrix | ECSMatrix:
    if isinstance(matrix, (ETCMatrix, ECSMatrix)):
        return matrix
    return ECSMatrix(matrix)


def environment_report(
    matrix,
    *,
    name: str = "environment",
    include_whatif: bool = True,
    max_whatif_rows: int = 5,
) -> str:
    """Produce a Markdown report for one HC environment.

    Parameters
    ----------
    matrix : ETCMatrix, ECSMatrix or array-like
        The environment (raw arrays are interpreted as ECS).
    name : str
        Heading for the report.
    include_whatif : bool
        Include the highest-impact removal entries (adds T + M
        characterizations of sub-environments; disable for very large
        matrices).
    max_whatif_rows : int
        How many removal entries to show per axis, ranked by total
        absolute measure shift.

    Examples
    --------
    >>> text = environment_report([[1.0, 4.0], [4.0, 1.0]], name="demo")
    >>> "## Measures" in text and "demo" in text
    True
    """
    env = _wrap(matrix)
    profile = characterize(env)
    lines = [f"# Heterogeneity report: {name}", ""]
    lines.append(
        f"{profile.n_tasks} task types x {profile.n_machines} machines — "
        f"{describe_regime(profile)}."
    )
    lines.append("")

    lines.append("## Measures")
    lines.append("")
    lines.append("| measure | value | comparison statistics |")
    lines.append("|---|---|---|")
    lines.append(
        f"| MPH (machine performance homogeneity) | {profile.mph:.4f} | "
        f"R={profile.machine_r:.4f}, G={profile.machine_g:.4f}, "
        f"COV={profile.machine_cov:.4f} |"
    )
    lines.append(
        f"| TDH (task difficulty homogeneity) | {profile.tdh:.4f} | "
        f"R={profile.task_r:.4f}, G={profile.task_g:.4f}, "
        f"COV={profile.task_cov:.4f} |"
    )
    lines.append(
        f"| TMA (task-machine affinity) | {profile.tma:.4f} | "
        f"{profile.tma_method} form |"
    )
    if profile.sinkhorn_iterations is not None:
        lines.append("")
        lines.append(
            f"Standard form converged in {profile.sinkhorn_iterations} "
            f"iterations (residual {profile.sinkhorn_residual:.2e})."
        )
    lines.append("")

    lines.append("## Affinity structure")
    lines.append("")
    clusters = affinity_clusters(env)
    if clusters.n_clusters == 1:
        lines.append(
            "No significant affinity groups: every machine ranks the task "
            "types the same way."
        )
    else:
        lines.append(
            f"{clusters.n_clusters} affinity groups "
            f"(strength = {clusters.strength:.4f}):"
        )
        lines.append("")
        for cid in range(clusters.n_clusters):
            tasks = [env.task_names[i] for i in clusters.task_groups()[cid]]
            machines = [
                env.machine_names[j] for j in clusters.machine_groups()[cid]
            ]
            lines.append(
                f"* group {cid}: tasks {tasks} prefer machines {machines}"
            )
    lines.append("")

    if include_whatif:
        lines.append("## Highest-impact removals")
        lines.append("")
        entries = whatif_drop_tasks(env) + whatif_drop_machines(env)
        entries.sort(
            key=lambda e: abs(e.delta_mph)
            + abs(e.delta_tdh)
            + abs(e.delta_tma),
            reverse=True,
        )
        for entry in entries[:max_whatif_rows]:
            lines.append(f"* {entry.summary()}")
        lines.append("")

    return "\n".join(lines)
