"""Analysis toolkit built on the measures.

The paper's introduction lists the downstream applications these
modules implement:

* :mod:`repro.analysis.whatif` — "what-if studies to identify the
  effect of adding/removing task types or machines from an HC system on
  its heterogeneity".
* :mod:`repro.analysis.independence` — empirical verification of the
  third measure property (the three measures can be moved
  independently), plus correlation studies over random ensembles.
* :mod:`repro.analysis.compare` — side-by-side environment comparison
  tables (the presentation of Figs. 6–8).
"""

from .whatif import (
    WhatIfEntry,
    whatif_drop_tasks,
    whatif_drop_machines,
    whatif_add_task,
    whatif_add_machine,
)
from .independence import (
    IndependenceResult,
    independence_study,
    measure_correlations,
)
from .compare import (
    comparison_table,
    format_table,
    measure_distance,
    equivalent_up_to_scaling,
    rank_by_similarity,
)
from .sensitivity import SensitivityResult, sensitivity_study
from .regimes import (
    GeneratorFootprint,
    RegimeThresholds,
    characterize_generator,
    describe_regime,
)
from .reporting import environment_report
from .evolution import EvolutionStep, track_evolution

__all__ = [
    "WhatIfEntry",
    "whatif_drop_tasks",
    "whatif_drop_machines",
    "whatif_add_task",
    "whatif_add_machine",
    "IndependenceResult",
    "independence_study",
    "measure_correlations",
    "comparison_table",
    "format_table",
    "measure_distance",
    "equivalent_up_to_scaling",
    "rank_by_similarity",
    "SensitivityResult",
    "sensitivity_study",
    "RegimeThresholds",
    "describe_regime",
    "GeneratorFootprint",
    "characterize_generator",
    "environment_report",
    "EvolutionStep",
    "track_evolution",
]
