"""Empirical independence of the three measures (measure property 3).

Two complementary experiments:

* :func:`independence_study` — the *constructive* check: hold two
  measure targets fixed, sweep the third through its range with
  :func:`repro.generate.from_targets`, and record all three achieved
  values.  Independence means the swept measure tracks its target while
  the other two stay pinned — this is exactly what the standard form of
  Section III-C buys, and the E9 benchmark regenerates the table.
* :func:`measure_correlations` — the *statistical* check: Pearson
  correlations of (MPH, TDH, TMA) over a random ensemble.  Unlike the
  totally-correlated pairs the paper warns against (e.g. standard
  deviation vs variance), the three measures show only weak empirical
  correlation on unconstrained random environments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_choice
from ..generate.ensembles import random_ecs
from ..generate.target_driven import TargetSpec, from_targets
from ..obs import current_recorder, span as _obs_span
from ..measures.machine_performance import mph as _mph
from ..measures.task_difficulty import tdh as _tdh
from ..measures.affinity import tma as _tma

__all__ = ["IndependenceResult", "independence_study", "measure_correlations"]

_MEASURES = ("mph", "tdh", "tma")


@dataclass(frozen=True)
class IndependenceResult:
    """Outcome of one constructive independence sweep.

    ``swept`` names the measure whose target varied; ``targets`` are the
    requested values; ``achieved`` is a (len(targets), 3) array of the
    achieved (MPH, TDH, TMA); ``fixed`` holds the two pinned targets.
    """

    swept: str
    targets: np.ndarray
    achieved: np.ndarray
    fixed: dict[str, float]

    def max_drift(self) -> float:
        """Largest deviation of the *pinned* measures from their targets
        across the sweep — the quantity independence drives to ~0."""
        drift = 0.0
        for k, name in enumerate(_MEASURES):
            if name == self.swept:
                continue
            drift = max(
                drift, float(np.abs(self.achieved[:, k] - self.fixed[name]).max())
            )
        return drift

    def sweep_error(self) -> float:
        """Largest deviation of the swept measure from its targets."""
        k = _MEASURES.index(self.swept)
        return float(np.abs(self.achieved[:, k] - self.targets).max())


def independence_study(
    swept: str,
    *,
    n_tasks: int = 8,
    n_machines: int = 6,
    targets: Sequence[float] | None = None,
    fixed: dict[str, float] | None = None,
    jitter: float = 0.0,
    seed=None,
) -> IndependenceResult:
    """Sweep one measure while holding the other two fixed.

    Parameters
    ----------
    swept : {"mph", "tdh", "tma"}
        Which measure to sweep.
    targets : sequence of float, optional
        Swept values; defaults to an even grid over the measure's range.
    fixed : dict, optional
        Pinned values of the other two measures (default 0.7 each).
    jitter, seed
        Generator controls (see :func:`repro.generate.from_targets`).
    """
    check_choice(swept, name="swept", choices=_MEASURES)
    if targets is None:
        targets = (
            np.linspace(0.05, 0.85, 9)
            if swept == "tma"
            else np.linspace(0.15, 0.95, 9)
        )
    targets = np.asarray(targets, dtype=np.float64)
    pinned = {name: 0.7 for name in _MEASURES if name != swept}
    if fixed:
        pinned.update(fixed)
    rec = current_recorder()
    if rec is not None:
        rec.counter("independence.trials", int(targets.shape[0]))
    achieved = np.empty((targets.shape[0], 3))
    with _obs_span(
        "analysis.independence", swept=swept, points=int(targets.shape[0])
    ):
        for row, value in enumerate(targets):
            spec_kwargs = dict(pinned)
            spec_kwargs[swept] = float(value)
            env = from_targets(
                n_tasks,
                n_machines,
                TargetSpec(**spec_kwargs),
                jitter=jitter,
                seed=seed,
            )
            achieved[row] = (_mph(env), _tdh(env), _tma(env))
    return IndependenceResult(
        swept=swept, targets=targets, achieved=achieved, fixed=pinned
    )


def _correlation_worker(args: tuple[int, int, float, int]) -> tuple:
    """Module-level worker (picklable) for :func:`measure_correlations`."""
    n_tasks, n_machines, spread, item_seed = args
    env = random_ecs(n_tasks, n_machines, spread=spread, seed=item_seed)
    return (_mph(env), _tdh(env), _tma(env))


def measure_correlations(
    *,
    n_tasks: int = 10,
    n_machines: int = 6,
    samples: int = 200,
    spread: float = 8.0,
    seed=0,
    n_jobs: int | None = None,
    batched: bool = True,
) -> np.ndarray:
    """3×3 Pearson correlation matrix of (MPH, TDH, TMA) over a random
    ensemble of environments.

    Returns the symmetric correlation matrix in measure order
    (mph, tdh, tma).  Perfectly redundant measures — the paper's
    standard-deviation-vs-variance example — would show off-diagonal
    entries of ±1; the three paper measures stay far from that.

    With ``batched`` (default) the whole ensemble is stacked and
    characterized through the vectorized
    :func:`repro.batch.characterize_ensemble` kernels; otherwise
    ``n_jobs`` distributes the per-sample scalar work across a process
    pool.  The sampled environments are identical either way because
    the per-sample seeds are derived up front from the master seed.
    """
    rng = np.random.default_rng(seed)
    item_seeds = [int(rng.integers(0, 2**63 - 1)) for _ in range(samples)]
    rec = current_recorder()
    if rec is not None:
        rec.counter("independence.trials", samples)
    if batched:
        from ..batch import characterize_ensemble
        from ..generate.ensembles import random_ecs

        stack = np.stack(
            [
                random_ecs(
                    n_tasks, n_machines, spread=float(spread), seed=s
                ).values
                for s in item_seeds
            ]
        )
        values = characterize_ensemble(stack).measures
    else:
        from .._parallel import parallel_map

        tasks = [
            (n_tasks, n_machines, float(spread), s) for s in item_seeds
        ]
        values = np.asarray(
            parallel_map(_correlation_worker, tasks, n_jobs=n_jobs)
        )
    return np.corrcoef(values, rowvar=False)
