"""Heterogeneity regimes: naming and mapping environments in measure space.

Two services on top of the three measures:

* :func:`describe_regime` — translate a
  :class:`~repro.measures.HeterogeneityProfile` (or any environment)
  into the conventional regime vocabulary of the ETC literature
  ("high/low task heterogeneity", "high/low machine heterogeneity",
  with/without significant affinity).
* :func:`characterize_generator` — place a *generator family* in
  (MPH, TDH, TMA) space by sampling it: the related-work gap the paper
  points out is that the widely used generation methods ([4], [6]) say
  nothing about where their outputs land on standard heterogeneity
  measures.  Feeding the Braun twelve-case suite through this function
  produces exactly that missing table (bench
  ``bench_generator_regimes.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._validation import check_positive_int
from ..generate._rng import resolve_rng
from ..measures.report import HeterogeneityProfile, characterize

__all__ = [
    "RegimeThresholds",
    "describe_regime",
    "GeneratorFootprint",
    "characterize_generator",
]


@dataclass(frozen=True)
class RegimeThresholds:
    """Cut points separating "high heterogeneity" from "low".

    MPH/TDH are *homogeneity* measures, so "high machine heterogeneity"
    means MPH **below** ``machine``; TMA is affinity itself, "affine"
    means TMA **above** ``affinity``.
    """

    machine: float = 0.5
    task: float = 0.5
    affinity: float = 0.15


def describe_regime(
    environment_or_profile,
    *,
    thresholds: RegimeThresholds | None = None,
) -> str:
    """Name the heterogeneity regime of an environment.

    Accepts an environment (anything :func:`characterize` takes) or an
    already-computed profile.

    Examples
    --------
    >>> import numpy as np
    >>> describe_regime(np.ones((3, 3)))
    'homogeneous machines, homogeneous tasks, no significant affinity'
    >>> describe_regime(np.diag([1.0, 100.0]) + 0.01)
    'heterogeneous machines, heterogeneous tasks, strong task-machine affinity'
    """
    thresholds = thresholds or RegimeThresholds()
    if isinstance(environment_or_profile, HeterogeneityProfile):
        profile = environment_or_profile
    else:
        profile = characterize(environment_or_profile)
    machine = (
        "heterogeneous machines"
        if profile.mph < thresholds.machine
        else "homogeneous machines"
    )
    task = (
        "heterogeneous tasks"
        if profile.tdh < thresholds.task
        else "homogeneous tasks"
    )
    if profile.tma >= max(2 * thresholds.affinity, 0.3):
        affinity = "strong task-machine affinity"
    elif profile.tma >= thresholds.affinity:
        affinity = "moderate task-machine affinity"
    else:
        affinity = "no significant affinity"
    return f"{machine}, {task}, {affinity}"


@dataclass(frozen=True)
class GeneratorFootprint:
    """Sampled (MPH, TDH, TMA) statistics of one generator family.

    ``mean`` and ``std`` are length-3 arrays in (mph, tdh, tma) order;
    ``samples`` is the raw (n, 3) array for downstream plotting.
    """

    name: str
    mean: np.ndarray
    std: np.ndarray
    samples: np.ndarray

    def row(self) -> str:
        m, t, a = self.mean
        sm, st, sa = self.std
        return (
            f"{self.name:<10} MPH {m:.3f}±{sm:.3f}  "
            f"TDH {t:.3f}±{st:.3f}  TMA {a:.3f}±{sa:.3f}"
        )


def characterize_generator(
    name: str,
    factory: Callable[[int], object],
    *,
    samples: int = 10,
    seed=0,
    batched: bool = True,
) -> GeneratorFootprint:
    """Sample a generator family and summarize its measure footprint.

    Parameters
    ----------
    name : str
        Label for the family (e.g. a Braun case name).
    factory : callable
        ``factory(seed) -> environment``; called with derived integer
        seeds.
    samples : int
        Environments to draw.
    seed : int or Generator
        Master seed.
    batched : bool
        When the drawn environments share a shape (they do for every
        generator family in :mod:`repro.generate`), characterize the
        whole sample as one stack through
        :func:`repro.batch.characterize_ensemble` (default).  Ragged
        families and ``batched=False`` take the per-sample scalar loop;
        the drawn environments are identical either way.

    Examples
    --------
    >>> from repro.generate import braun_case
    >>> fp = characterize_generator(
    ...     "hihi-i",
    ...     lambda s: braun_case("hihi-i", n_tasks=16, n_machines=6, seed=s),
    ...     samples=3,
    ... )
    >>> fp.samples.shape
    (3, 3)
    """
    samples = check_positive_int(samples, name="samples")
    rng = resolve_rng(seed)
    environments = [
        factory(int(rng.integers(0, 2**63 - 1))) for _ in range(samples)
    ]
    values: np.ndarray | None = None
    if batched:
        from ..batch import characterize_ensemble, stack_environments

        stack = stack_environments(environments)
        if stack is not None:
            values = characterize_ensemble(stack).measures
    if values is None:
        values = np.empty((samples, 3))
        for k, env in enumerate(environments):
            profile = characterize(env)
            values[k] = (profile.mph, profile.tdh, profile.tma)
    return GeneratorFootprint(
        name=name,
        mean=values.mean(axis=0),
        std=values.std(axis=0),
        samples=values,
    )
