"""Tracking heterogeneity over a sequence of environment edits.

Capacity planning rarely stops at one what-if: systems evolve through
sequences of procurements, decommissions, and new workloads.
:func:`track_evolution` applies an edit script step by step, measuring
after each, so the measure trajectory — "the upgrade doubled affinity,
the decommission restored machine homogeneity" — is explicit.

An edit is a tuple:

* ``("add_machine", name, column)``
* ``("drop_machine", name_or_index)``
* ``("add_task", name, row)``
* ``("drop_task", name_or_index)``
* ``("scale", factor)`` — a unit change, a built-in no-op check (the
  measures must not move).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.environment import ECSMatrix, ETCMatrix
from ..exceptions import MatrixValueError
from ..measures.report import HeterogeneityProfile, characterize

__all__ = ["EvolutionStep", "track_evolution"]

_EDIT_KINDS = ("add_machine", "drop_machine", "add_task", "drop_task", "scale")


@dataclass(frozen=True)
class EvolutionStep:
    """One point of the trajectory: the edit and the profile after it.

    ``description`` is human-readable (``"add_machine accel"``); step 0
    is the unedited baseline with description ``"baseline"``.
    """

    description: str
    profile: HeterogeneityProfile

    def row(self) -> str:
        p = self.profile
        return (
            f"{self.description:<28} MPH={p.mph:.3f}  TDH={p.tdh:.3f}  "
            f"TMA={p.tma:.3f}  ({p.n_tasks}x{p.n_machines})"
        )


def _apply(env, edit):
    if not edit or edit[0] not in _EDIT_KINDS:
        raise MatrixValueError(
            f"unknown edit {edit!r}; kinds: {_EDIT_KINDS}"
        )
    kind = edit[0]
    if kind == "add_machine":
        _, name, column = edit
        return env.add_machine(name, column), f"add_machine {name}"
    if kind == "drop_machine":
        _, target = edit
        name = env.machine_names[env.machine_index(target)]
        return env.drop_machines([target]), f"drop_machine {name}"
    if kind == "add_task":
        _, name, row = edit
        return env.add_task(name, row), f"add_task {name}"
    if kind == "drop_task":
        _, target = edit
        name = env.task_names[env.task_index(target)]
        return env.drop_tasks([target]), f"drop_task {name}"
    _, factor = edit
    return env.scaled(factor), f"scale x{factor:g}"


def track_evolution(
    environment,
    edits: Sequence[tuple],
) -> list[EvolutionStep]:
    """Apply ``edits`` in order, characterizing after every step.

    Returns the trajectory including the baseline (``len(edits) + 1``
    entries).  The input environment is never mutated (all core edits
    are copy-on-write).

    Examples
    --------
    >>> from repro import ECSMatrix
    >>> env = ECSMatrix([[1.0, 1.0], [2.0, 2.0]])
    >>> steps = track_evolution(env, [
    ...     ("add_machine", "accel", [4.0, 0.5]),
    ...     ("scale", 60.0),
    ... ])
    >>> [s.description for s in steps]
    ['baseline', 'add_machine accel', 'scale x60']
    >>> steps[1].profile.tma > steps[0].profile.tma   # accel adds affinity
    True
    >>> abs(steps[2].profile.tma - steps[1].profile.tma) < 1e-9
    True
    """
    if not isinstance(environment, (ETCMatrix, ECSMatrix)):
        environment = ECSMatrix(environment)
    steps = [EvolutionStep("baseline", characterize(environment))]
    current = environment
    for edit in edits:
        current, description = _apply(current, edit)
        steps.append(EvolutionStep(description, characterize(current)))
    return steps
