"""Task-machine affinity (paper Sections II-E and III-D).

TMA captures the aspect of heterogeneity MPH and TDH miss: different
sets of task types being better suited to different sets of machines.
Geometrically it is column correlation — identical column directions
(zero affinity) collapse the non-maximum singular values to 0, while
orthogonal affinity structure pushes them up toward σ1.

Two computation methods:

* ``method="standard"`` (default, eq. 8): standardize the ECS matrix
  (rows sum to ``sqrt(M/T)``, columns to ``sqrt(T/M)``) so σ1 = 1
  exactly (Theorem 2), then ::

      TMA = sum_{i=2}^{min(T,M)} σ_i / (min(T,M) - 1)

  This is the paper's contribution: with the standard form, TMA is
  independent of both MPH and TDH.

* ``method="column"`` (eq. 5, the precursor [2]): 1-norm column
  normalization only, with the explicit ``1/σ1`` factor.  Available for
  comparison and as a fallback for matrices whose zero pattern admits
  no standard form (Section VI).

TMA lies in ``[0, 1]``; matrices with a single row or column have no
non-maximum singular values and TMA is defined as 0.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.linalg

from .._validation import check_choice
from ..normalize.standard_form import (
    DEFAULT_TOL,
    column_normalize,
    standardize,
)
from ..obs import metrics as _metrics
from ..obs import span as _obs_span

__all__ = ["tma", "task_machine_affinity", "standard_singular_values"]


def standard_singular_values(
    matrix,
    *,
    task_weights=None,
    machine_weights=None,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    zeros: str = "strict",
) -> np.ndarray:
    """Singular values of the standard-form ECS matrix, descending.

    By Theorem 2 the first value is 1 up to the normalization
    tolerance; the remainder are the raw material of TMA (eq. 8).
    ``scipy.linalg.svdvals`` is used — values only, no singular vectors,
    the economical call the guides recommend for this access pattern.
    ``zeros`` selects the Section-VI handling (see
    :func:`repro.normalize.standardize`); weighting factors follow the
    canonical override rule shared by every measure.
    """
    standard = standardize(
        matrix,
        task_weights=task_weights,
        machine_weights=machine_weights,
        tol=tol,
        max_iterations=max_iterations,
        zeros=zeros,
    )
    shape = standard.matrix.shape
    t0 = time.perf_counter()
    with _obs_span("svd.scalar", rows=shape[0], cols=shape[1]):
        values = scipy.linalg.svdvals(standard.matrix)
    _metrics.observe_svd("scalar", time.perf_counter() - t0)
    return values


def tma(
    matrix,
    *,
    task_weights=None,
    machine_weights=None,
    method: str = "standard",
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    zeros: str = "strict",
) -> float:
    """Task-machine affinity (paper eq. 8, or eq. 5 for ``"column"``).

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment.  ECSMatrix weighting factors are applied before
        normalization; ETC inputs are converted through eq. 1.
    task_weights, machine_weights : array-like, optional
        Explicit weighting factors, overriding any wrapper-stored ones
        — the same convention as :func:`repro.measures.mph` and
        :func:`repro.measures.tdh`.
    method : {"standard", "column"}
        ``"standard"`` — eq. 8 on the standard-form matrix (requires the
        zero pattern to be normalizable; raises
        :class:`~repro.exceptions.NotNormalizableError` otherwise).
        ``"column"`` — eq. 5 on the column-normalized matrix (always
        defined).
    tol, max_iterations
        Sinkhorn controls for the standard form (ignored for
        ``"column"``).
    zeros : {"strict", "limit"}
        Section-VI zero handling for the standard form; ``"limit"``
        evaluates TMA on the eq.-9 limit (the paper's Fig. 4 semantics
        for matrices A, B, D).  Ignored for ``method="column"``.

    Returns
    -------
    float in [0, 1]

    Examples
    --------
    Identical columns — no affinity:

    >>> round(tma([[2.0, 2.0], [1.0, 1.0]]), 9)
    0.0

    A task type that runs on only one machine — total affinity
    (paper Fig. 4, matrices A-D):

    >>> round(tma([[1.0, 0.0], [0.0, 1.0]]), 9)
    1.0
    """
    check_choice(method, name="method", choices=("standard", "column"))
    if method == "standard":
        values = standard_singular_values(
            matrix,
            task_weights=task_weights,
            machine_weights=machine_weights,
            tol=tol,
            max_iterations=max_iterations,
            zeros=zeros,
        )
        if values.shape[0] < 2:
            return 0.0
        # sigma_1 == 1 by Theorem 2 (up to tol); eq. 8 drops the 1/sigma_1.
        raw = float(values[1:].sum() / (values.shape[0] - 1))
    else:
        normalized = column_normalize(
            matrix,
            task_weights=task_weights,
            machine_weights=machine_weights,
        )
        t0 = time.perf_counter()
        with _obs_span(
            "svd.scalar", rows=normalized.shape[0], cols=normalized.shape[1]
        ):
            values = scipy.linalg.svdvals(normalized)
        _metrics.observe_svd("scalar", time.perf_counter() - t0)
        if values.shape[0] < 2:
            return 0.0
        raw = float(values[1:].sum() / ((values.shape[0] - 1) * values[0]))
    # Clamp tiny numerical excursions (|error| ~ tol) into the range.
    return float(min(max(raw, 0.0), 1.0))


#: Long-form alias for :func:`tma`.
task_machine_affinity = tma
