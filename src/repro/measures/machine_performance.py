"""Machine performance and its homogeneity (paper Section II-C).

The performance of machine ``j`` is the weighted column sum of the ECS
matrix (eq. 4, reducing to eq. 2 with unit weights)::

    MP_j = w_m[j] * sum_i  w_t[i] * ECS(i, j)

With machines sorted ascending by performance, the machine performance
homogeneity is the average ratio of each machine's performance to the
next better one (eq. 3)::

    MPH = (1 / (M-1)) * sum_{j=1}^{M-1}  MP_(j) / MP_(j+1)

MPH lies in ``(0, 1]``; 1 means all machines perform identically.  A
single-machine environment is defined as perfectly homogeneous
(MPH = 1): the sum in eq. 3 is empty and there is no heterogeneity to
report.
"""

from __future__ import annotations

import numpy as np

from ._coerce import coerce_ecs_and_weights
from .alternatives import average_adjacent_ratio

__all__ = ["machine_performance", "mph", "machine_performance_homogeneity"]


def machine_performance(
    matrix, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Per-machine performance vector MP (eq. 2 / weighted eq. 4).

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment (raw arrays are interpreted as ECS).
    task_weights, machine_weights : array-like, optional
        Weighting factors ``w_t``/``w_m``; wrapper-stored weights are
        used when the argument is omitted.

    Returns
    -------
    numpy.ndarray, shape (M,)
        In original machine order (not sorted).

    Examples
    --------
    Figure 1 of the paper: machine 1's performance is 17.

    >>> ecs = [[4., 8., 5.], [5., 9., 4.], [6., 5., 2.], [2., 1., 3.]]
    >>> machine_performance(ecs)
    array([17., 23., 14.])
    """
    ecs, w_t, w_m = coerce_ecs_and_weights(matrix, task_weights, machine_weights)
    return w_m * (w_t @ ecs)


def mph(matrix, *, task_weights=None, machine_weights=None) -> float:
    """Machine performance homogeneity (paper eq. 3).

    Examples
    --------
    The paper's Figure 2, environment 1 (performances 1, 2, 4, 8, 16):

    >>> mph(np.diag([1.0, 2.0, 4.0, 8.0, 16.0]))
    0.5
    """
    perf = machine_performance(
        matrix, task_weights=task_weights, machine_weights=machine_weights
    )
    return average_adjacent_ratio(perf)


#: Long-form alias for :func:`mph`.
machine_performance_homogeneity = mph
