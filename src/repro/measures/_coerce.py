"""Input coercion shared by the measure functions.

Every measure accepts:

* a raw array-like (interpreted as an ECS matrix),
* an :class:`~repro.core.ECSMatrix` (stored weights used unless the
  caller overrides them), or
* an :class:`~repro.core.ETCMatrix` (converted through paper eq. 1,
  stored weights used unless overridden).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_ecs_array, check_weights
from ..core.environment import ECSMatrix, ETCMatrix

__all__ = ["coerce_ecs_and_weights"]


def coerce_ecs_and_weights(
    matrix, task_weights, machine_weights
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(ecs, w_t, w_m)`` as validated float64 arrays."""
    if isinstance(matrix, ETCMatrix):
        matrix = matrix.to_ecs()
    if isinstance(matrix, ECSMatrix):
        if task_weights is None:
            task_weights = matrix.task_weights
        if machine_weights is None:
            machine_weights = matrix.machine_weights
        ecs = matrix.values
    else:
        ecs = as_ecs_array(matrix)
    w_t = check_weights(task_weights, ecs.shape[0], name="task_weights")
    w_m = check_weights(machine_weights, ecs.shape[1], name="machine_weights")
    return ecs, w_t, w_m
