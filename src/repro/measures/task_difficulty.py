"""Task difficulty and its homogeneity (paper Section III).

The difficulty of task type ``i`` is quantified by its weighted row sum
in the ECS matrix (eq. 6)::

    TD_i = w_t[i] * sum_j  w_m[j] * ECS(i, j)

Higher row sums mean the task completes faster across the machine set,
i.e. the task is *less* difficult.  With task types sorted ascending by
TD, the task difficulty homogeneity is the average adjacent ratio
(eq. 7), mirroring MPH::

    TDH = (1 / (T-1)) * sum_{i=1}^{T-1}  TD_(i) / TD_(i+1)

TDH lies in ``(0, 1]``; a single-task environment is defined as
perfectly homogeneous (TDH = 1).  TDH is the measure this paper adds to
the MPH/TMA pair of the authors' earlier work [2]; its introduction is
what forces the full row-and-column standard form for TMA.
"""

from __future__ import annotations

import numpy as np

from ._coerce import coerce_ecs_and_weights
from .alternatives import average_adjacent_ratio

__all__ = ["task_difficulty", "tdh", "task_difficulty_homogeneity"]


def task_difficulty(
    matrix, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Per-task difficulty vector TD (paper eq. 6).

    Returns the vector in original task order (not sorted).  Note that
    larger TD means an *easier* task type (more of it completes per
    unit time across the machines).

    Examples
    --------
    >>> ecs = [[4., 8., 5.], [5., 9., 4.], [6., 5., 2.], [2., 1., 3.]]
    >>> task_difficulty(ecs)
    array([17., 18., 13.,  6.])
    """
    ecs, w_t, w_m = coerce_ecs_and_weights(matrix, task_weights, machine_weights)
    return w_t * (ecs @ w_m)


def tdh(matrix, *, task_weights=None, machine_weights=None) -> float:
    """Task difficulty homogeneity (paper eq. 7).

    Examples
    --------
    Two equally difficult task types are perfectly homogeneous:

    >>> tdh([[1.0, 2.0], [2.0, 1.0]])
    1.0
    """
    diff = task_difficulty(
        matrix, task_weights=task_weights, machine_weights=machine_weights
    )
    return average_adjacent_ratio(diff)


#: Long-form alias for :func:`tdh`.
task_difficulty_homogeneity = tdh
