"""Affinity structure extraction: *which* tasks prefer *which* machines.

TMA quantifies how much task-machine affinity an environment has; this
module answers the follow-up question the measure immediately raises —
what the affinity groups are.  The machinery is spectral co-clustering
on the standard-form ECS matrix:

* Theorem 2 pins σ₁ = 1 with uniform singular vectors, so the leading
  pair carries no grouping information;
* the *non-maximum* singular pairs (exactly the ones TMA averages) are
  the affinity structure: tasks and machines are embedded by the next
  ``r`` singular vectors, scaled by their singular values, and
  co-clustered with a deterministic seeded k-means.

For a block environment (each task group fast on its own machine
group) the embedding separates the blocks perfectly; for a rank-1
environment (TMA = 0) there is nothing to embed and a single cluster is
reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..exceptions import MatrixValueError
from ..normalize.standard_form import DEFAULT_TOL, standardize

__all__ = ["AffinityClusters", "affinity_clusters"]


@dataclass(frozen=True)
class AffinityClusters:
    """Joint task/machine affinity grouping.

    Attributes
    ----------
    task_labels : numpy.ndarray of int, shape (T,)
        Cluster id per task type.
    machine_labels : numpy.ndarray of int, shape (M,)
        Cluster id per machine; ids are shared with ``task_labels`` —
        task cluster ``c`` prefers machine cluster ``c``.
    n_clusters : int
    singular_values : numpy.ndarray
        Full descending singular spectrum of the standard form (σ₁ ≈ 1).
    strength : float
        Mean of the non-maximum singular values — i.e. the TMA, the
        amount of structure the clustering explains.
    """

    task_labels: np.ndarray
    machine_labels: np.ndarray
    n_clusters: int
    singular_values: np.ndarray
    strength: float

    def task_groups(self) -> list[list[int]]:
        """Task indices per cluster id."""
        return [
            np.nonzero(self.task_labels == c)[0].tolist()
            for c in range(self.n_clusters)
        ]

    def machine_groups(self) -> list[list[int]]:
        """Machine indices per cluster id."""
        return [
            np.nonzero(self.machine_labels == c)[0].tolist()
            for c in range(self.n_clusters)
        ]


def _kmeans(points: np.ndarray, n_clusters: int, *, seed: int = 0,
            iterations: int = 100) -> np.ndarray:
    """Deterministic Lloyd's k-means (k-means++-style seeding)."""
    rng = np.random.default_rng(seed)
    n = points.shape[0]
    # k-means++ seeding.
    centers = [points[int(rng.integers(n))]]
    for _ in range(n_clusters - 1):
        dist = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = dist.sum()
        if total <= 0:
            centers.append(points[int(rng.integers(n))])
            continue
        centers.append(points[int(rng.choice(n, p=dist / total))])
    centers = np.array(centers)
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(iterations):
        dist = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = dist.argmin(axis=1)
        if (new_labels == labels).all() and _ > 0:
            break
        labels = new_labels
        for c in range(n_clusters):
            members = points[labels == c]
            if members.size:
                centers[c] = members.mean(axis=0)
    return labels


def affinity_clusters(
    matrix,
    *,
    n_clusters: int | None = None,
    significance: float = 0.15,
    tol: float = DEFAULT_TOL,
    zeros: str = "limit",
    seed: int = 0,
) -> AffinityClusters:
    """Extract the task/machine affinity groups of an environment.

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment.
    n_clusters : int, optional
        Number of groups.  Default: one more than the number of
        singular values exceeding ``significance`` (each significant
        non-maximum singular pair separates one more group), capped at
        ``min(T, M)``.
    significance : float
        Threshold (relative to σ₁ = 1) above which a non-maximum
        singular value counts as structure.
    tol, zeros
        Standard-form controls (``zeros="limit"`` so environments with
        incompatibilities still cluster).
    seed : int
        k-means seeding (deterministic by default).

    Examples
    --------
    A two-block environment separates perfectly:

    >>> import numpy as np
    >>> block = np.array([
    ...     [9.0, 9.0, 0.1, 0.1],
    ...     [9.0, 9.0, 0.1, 0.1],
    ...     [0.1, 0.1, 9.0, 9.0],
    ...     [0.1, 0.1, 9.0, 9.0],
    ... ])
    >>> clusters = affinity_clusters(block)
    >>> clusters.n_clusters
    2
    >>> bool(clusters.task_labels[0] == clusters.machine_labels[0])
    True
    >>> bool(clusters.task_labels[0] != clusters.task_labels[2])
    True
    """
    standard = standardize(matrix, tol=tol, zeros=zeros)
    u, s, vt = scipy.linalg.svd(standard.matrix, full_matrices=False)
    n_tasks, n_machines = standard.matrix.shape
    limit = min(n_tasks, n_machines)
    strength = float(s[1:].sum() / (limit - 1)) if limit > 1 else 0.0

    significant = int(np.sum(s[1:] > significance))
    if n_clusters is None:
        n_clusters = min(significant + 1, limit)
    if n_clusters < 1 or n_clusters > limit:
        raise MatrixValueError(
            f"n_clusters must be in [1, {limit}], got {n_clusters}"
        )
    if n_clusters == 1:
        return AffinityClusters(
            task_labels=np.zeros(n_tasks, dtype=np.intp),
            machine_labels=np.zeros(n_machines, dtype=np.intp),
            n_clusters=1,
            singular_values=s,
            strength=strength,
        )

    # Joint embedding from the non-maximum singular pairs (skip the
    # uniform Theorem-2 pair), weighted by singular value.
    r = max(1, n_clusters - 1)
    task_embed = u[:, 1 : 1 + r] * s[1 : 1 + r]
    machine_embed = vt[1 : 1 + r, :].T * s[1 : 1 + r]
    points = np.vstack([task_embed, machine_embed])
    labels = _kmeans(points, n_clusters, seed=seed)
    task_labels = labels[:n_tasks]
    machine_labels = labels[n_tasks:]

    # Relabel so cluster ids are deterministic (order of first task
    # appearance) and shared sensibly between sides.
    remap: dict[int, int] = {}
    for label in list(task_labels) + list(machine_labels):
        if label not in remap:
            remap[label] = len(remap)
    task_labels = np.array([remap[l] for l in task_labels], dtype=np.intp)
    machine_labels = np.array(
        [remap[l] for l in machine_labels], dtype=np.intp
    )
    return AffinityClusters(
        task_labels=task_labels,
        machine_labels=machine_labels,
        n_clusters=n_clusters,
        singular_values=s,
        strength=strength,
    )
