"""Verification helpers for the paper's three measure properties.

Section I lists the properties a heterogeneity measure must satisfy:

1. match intuition about heterogeneity,
2. be invariant under scaling the ETC matrix by a constant (a change of
   time units must not change the measured heterogeneity),
3. be as independent as possible of the other measures in use.

These helpers turn properties 2 and 3 into executable checks that the
test suite (and downstream users validating custom measures) can run
against any callable with the ``measure(ecs_matrix) -> float``
signature.  Property 1 is exercised by the Fig. 2 / Fig. 4 experiment
benchmarks instead — intuition is checked against the paper's stated
orderings.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._validation import as_ecs_array, check_positive_scalar

__all__ = [
    "verify_scale_invariance",
    "verify_range",
    "verify_independence_shift",
]

Measure = Callable[[np.ndarray], float]


def verify_scale_invariance(
    measure: Measure,
    matrix,
    *,
    factors: Sequence[float] = (0.001, 0.5, 3.0, 60.0, 1e6),
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Check property 2: ``measure(k * ECS) == measure(ECS)`` for all k.

    Scaling the ETC matrix by ``k`` scales the ECS matrix by ``1/k``, so
    invariance under positive scalings of the ECS matrix is the same
    property.  Returns True when every factor agrees within tolerance.
    """
    ecs = as_ecs_array(matrix)
    baseline = measure(ecs)
    for factor in factors:
        factor = check_positive_scalar(factor, name="factor")
        if not np.isclose(
            measure(ecs * factor), baseline, rtol=rtol, atol=atol
        ):
            return False
    return True


def verify_range(
    measure: Measure,
    matrices: Sequence,
    *,
    low: float = 0.0,
    high: float = 1.0,
    atol: float = 1e-9,
) -> bool:
    """Check that ``measure`` stays within ``[low, high]`` on a corpus.

    MPH and TDH live in ``(0, 1]`` and TMA in ``[0, 1]``; pass the
    appropriate bounds.
    """
    for matrix in matrices:
        value = measure(as_ecs_array(matrix))
        if value < low - atol or value > high + atol:
            return False
    return True


def verify_independence_shift(
    measure: Measure,
    matrix,
    transform: Callable[[np.ndarray], np.ndarray],
    *,
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> bool:
    """Check property 3 in its operational form: ``transform`` is
    supposed to change *other* measures while leaving ``measure`` fixed.

    Example: multiplying every column of the ECS matrix by a distinct
    positive constant changes MPH at will but must not move TMA
    (the standard form absorbs any diagonal column scaling) — that is
    exactly what the Theorem-1 construction guarantees.

    Returns True when ``measure`` is unchanged by ``transform`` within
    tolerance.
    """
    ecs = as_ecs_array(matrix)
    before = measure(ecs)
    after = measure(as_ecs_array(transform(ecs.copy())))
    return bool(np.isclose(before, after, rtol=rtol, atol=atol))
