"""One-call environment characterization.

:func:`characterize` computes the full profile of an HC environment:
the paper's three measures, the Section II-D comparison statistics for
both machines and task types, and the normalization diagnostics
(standard-form iteration count, residual) that the paper reports for
the SPEC matrices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_choice
from ..exceptions import ConvergenceError, NotNormalizableError
from ..normalize.standard_form import DEFAULT_TOL, standardize
from ..obs import metrics as _metrics
from ..obs import span as _obs_span
from ._coerce import coerce_ecs_and_weights
from .affinity import tma
from .alternatives import (
    average_adjacent_ratio,
    coefficient_of_variation,
    geometric_mean_ratio,
    min_max_ratio,
)

__all__ = ["HeterogeneityProfile", "characterize", "characterize_many"]


@dataclass(frozen=True)
class HeterogeneityProfile:
    """Complete heterogeneity characterization of one environment.

    Attributes
    ----------
    mph, tdh, tma : float
        The paper's three measures.  ``tma`` may come from the
        column-normalized fallback (eq. 5) when the standard form does
        not exist; ``tma_method`` records which formula produced it.
    machine_performance, task_difficulty : numpy.ndarray
        The MP and TD vectors in original order.
    machine_r, machine_g, machine_cov : float
        Section II-D comparison statistics over MP.
    task_r, task_g, task_cov : float
        The same statistics over TD.
    sinkhorn_iterations : int or None
        Standard-form iteration count (None when the fallback was used).
    sinkhorn_residual : float or None
        Final max row/column-sum error of the standard form.
    tma_method : str
        ``"standard"`` (eq. 8) or ``"column"`` (eq. 5 fallback).
    n_tasks, n_machines : int
        Environment dimensions.
    """

    mph: float
    tdh: float
    tma: float
    machine_performance: np.ndarray = field(repr=False)
    task_difficulty: np.ndarray = field(repr=False)
    machine_r: float
    machine_g: float
    machine_cov: float
    task_r: float
    task_g: float
    task_cov: float
    sinkhorn_iterations: int | None
    sinkhorn_residual: float | None
    tma_method: str
    n_tasks: int
    n_machines: int

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"HC environment: {self.n_tasks} task types x "
            f"{self.n_machines} machines",
            f"  MPH = {self.mph:.4f}   (R={self.machine_r:.4f}, "
            f"G={self.machine_g:.4f}, COV={self.machine_cov:.4f})",
            f"  TDH = {self.tdh:.4f}   (R={self.task_r:.4f}, "
            f"G={self.task_g:.4f}, COV={self.task_cov:.4f})",
            f"  TMA = {self.tma:.4f}   [{self.tma_method} form]",
        ]
        if self.sinkhorn_iterations is not None:
            lines.append(
                f"  standard form: {self.sinkhorn_iterations} iterations, "
                f"residual {self.sinkhorn_residual:.2e}"
            )
        return "\n".join(lines)


def _tma_from_standard(standard, backend=None) -> float:
    """eq. 8 on an already-computed standard form (no second Sinkhorn)."""
    from ..backends import resolve_backend

    shape = standard.matrix.shape
    t0 = time.perf_counter()
    with _obs_span("svd.scalar", rows=shape[0], cols=shape[1]):
        values = resolve_backend(backend).svd_values(standard.matrix)
    _metrics.observe_svd("scalar", time.perf_counter() - t0)
    if values.shape[0] < 2:
        return 0.0
    return float(min(max(values[1:].sum() / (values.shape[0] - 1), 0.0), 1.0))


def characterize(
    matrix,
    *,
    task_weights=None,
    machine_weights=None,
    tol: float = DEFAULT_TOL,
    tma_fallback: str = "limit",
    backend=None,
    precision: str | None = None,
) -> HeterogeneityProfile:
    """Compute the full heterogeneity profile of an environment.

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment.
    task_weights, machine_weights : array-like, optional
        Weighting factors (wrapper-stored weights used by default).
    tol : float
        Sinkhorn stopping tolerance for the standard form.
    tma_fallback : {"limit", "column", "raise"}
        What to do when the exact standard form does not exist
        (non-normalizable zero pattern, Section VI):

        * ``"limit"`` (default) — evaluate TMA on the limit of the
          paper's eq. 9 iteration (the Fig. 4 semantics); recorded as
          ``tma_method="limit"``.
        * ``"column"`` — fall back to the eq. 5 column-normalized
          formula; recorded as ``tma_method="column"``.
        * ``"raise"`` — propagate the
          :class:`~repro.exceptions.NotNormalizableError`.
    backend : str or KernelBackend, optional
        Kernel backend running the Sinkhorn iteration and the SVD (see
        :mod:`repro.backends`).
    precision : {"float64", "float32"}, optional
        Float32 fast path for the standard form, float64-verified as in
        :func:`repro.normalize.sinkhorn_knopp`.

    Examples
    --------
    >>> profile = characterize([[1.0, 2.0], [2.0, 4.0]])
    >>> round(profile.mph, 4), round(profile.tdh, 4), round(profile.tma, 4)
    (0.5, 0.5, 0.0)
    """
    check_choice(
        tma_fallback, name="tma_fallback", choices=("limit", "column", "raise")
    )
    ecs, w_t, w_m = coerce_ecs_and_weights(matrix, task_weights, machine_weights)
    weighted = w_t[:, None] * w_m[None, :] * ecs
    mp = weighted.sum(axis=0)
    td = weighted.sum(axis=1)

    iterations: int | None = None
    residual: float | None = None
    method = "standard"
    with _obs_span(
        "measures.characterize", rows=ecs.shape[0], cols=ecs.shape[1]
    ) as sp:
        try:
            standard = standardize(
                weighted,
                tol=tol,
                zeros="strict",
                backend=backend,
                precision=precision,
            )
            iterations = standard.iterations
            residual = standard.residual
            tma_value = _tma_from_standard(standard, backend)
        except (NotNormalizableError, ConvergenceError):
            if tma_fallback == "raise":
                raise
            if tma_fallback == "limit":
                try:
                    standard = standardize(
                        weighted,
                        tol=tol,
                        zeros="limit",
                        backend=backend,
                        precision=precision,
                    )
                except NotNormalizableError:
                    # Even the eq. 9 limit may not exist (the margins can
                    # be infeasible outright, e.g. one machine compatible
                    # with a single task type); eq. 5 always is.
                    method = "column"
                    tma_value = tma(weighted, method="column")
                else:
                    method = "limit"
                    iterations = standard.iterations
                    residual = standard.residual
                    tma_value = _tma_from_standard(standard, backend)
            else:
                method = "column"
                tma_value = tma(weighted, method="column")
        sp.note(tma_method=method, iterations=iterations)
    _metrics.count_characterize(method)

    return HeterogeneityProfile(
        mph=average_adjacent_ratio(mp),
        tdh=average_adjacent_ratio(td),
        tma=tma_value,
        machine_performance=mp,
        task_difficulty=td,
        machine_r=min_max_ratio(mp),
        machine_g=geometric_mean_ratio(mp),
        machine_cov=coefficient_of_variation(mp),
        task_r=min_max_ratio(td),
        task_g=geometric_mean_ratio(td),
        task_cov=coefficient_of_variation(td),
        sinkhorn_iterations=iterations,
        sinkhorn_residual=residual,
        tma_method=method,
        n_tasks=ecs.shape[0],
        n_machines=ecs.shape[1],
    )


def _characterize_worker(args: tuple) -> HeterogeneityProfile:
    """Module-level worker (picklable) for :func:`characterize_many`."""
    matrix, tol, tma_fallback = args
    return characterize(matrix, tol=tol, tma_fallback=tma_fallback)


def characterize_many(
    environments,
    *,
    tol: float = DEFAULT_TOL,
    tma_fallback: str = "limit",
    n_jobs: int | None = None,
) -> list[HeterogeneityProfile]:
    """Characterize a batch of environments, optionally in parallel.

    Equivalent to ``[characterize(e, ...) for e in environments]``;
    with ``n_jobs > 1`` the batch is distributed across a process pool
    (raw arrays and the core matrix wrappers are picklable).  Ensemble
    studies over hundreds of environments are the intended use.

    Examples
    --------
    >>> import numpy as np
    >>> profiles = characterize_many([np.ones((2, 2)), np.eye(2) + 0.01])
    >>> [round(p.tma, 2) for p in profiles]
    [0.0, 0.98]
    """
    from .._parallel import parallel_map

    items = [(env, tol, tma_fallback) for env in environments]
    return parallel_map(_characterize_worker, items, n_jobs=n_jobs)
