"""Homogeneity statistics over performance vectors (Section II-D).

The paper compares MPH against three other candidate measures on the
machine-performance vector and shows only MPH matches intuition about
the spread of *intermediate* machines:

* ``R`` (:func:`min_max_ratio`) — lowest/highest performance ratio,
* ``G`` (:func:`geometric_mean_ratio`) — geometric mean of adjacent
  sorted ratios, which telescopes to ``R ** (1/(M-1))``,
* ``COV`` (:func:`coefficient_of_variation`) — population standard
  deviation over mean (a *heterogeneity* measure: higher = more
  heterogeneous, unlike the other three).

:func:`average_adjacent_ratio` is the shared kernel of MPH (eq. 3) and
TDH (eq. 7).  All functions take a 1-D vector of strictly positive
values (performances or difficulties) in any order; they sort
internally.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_positive_vector

__all__ = [
    "average_adjacent_ratio",
    "min_max_ratio",
    "geometric_mean_ratio",
    "coefficient_of_variation",
]


def average_adjacent_ratio(values) -> float:
    """Mean ratio of each sorted value to its successor (eqs. 3 and 7).

    For ascending values ``v_(1) <= ... <= v_(n)`` this is
    ``mean(v_(k) / v_(k+1))``.  Returns 1.0 for a single value (empty
    sum; a lone machine/task is perfectly homogeneous).

    Examples
    --------
    >>> average_adjacent_ratio([1.0, 2.0, 4.0, 8.0, 16.0])
    0.5
    >>> round(average_adjacent_ratio([16.0, 1.0, 1.0, 1.0, 1.0]), 4)
    0.7656
    """
    vec = np.sort(as_positive_vector(values, name="values"))
    if vec.shape[0] == 1:
        return 1.0
    return float(np.mean(vec[:-1] / vec[1:]))


def min_max_ratio(values) -> float:
    """The measure ``R``: worst performance over best (Section II-D).

    Captures only the two extremes — the paper's Fig. 2 environments 1
    through 4 all share ``R = 1/16`` despite clearly different spreads.

    Examples
    --------
    >>> min_max_ratio([1.0, 2.0, 4.0, 8.0, 16.0])
    0.0625
    """
    vec = as_positive_vector(values, name="values")
    return float(vec.min() / vec.max())


def geometric_mean_ratio(values) -> float:
    """The measure ``G``: geometric mean of adjacent sorted ratios.

    Telescopes to ``(min/max) ** (1/(n-1))``, so like ``R`` it ignores
    the intermediate machines entirely (Fig. 2: G = 0.5 for all four
    environments).  Returns 1.0 for a single value.

    Examples
    --------
    >>> geometric_mean_ratio([1.0, 2.0, 4.0, 8.0, 16.0])
    0.5
    >>> geometric_mean_ratio([1.0, 1.0, 1.0, 1.0, 16.0])
    0.5
    """
    vec = as_positive_vector(values, name="values")
    if vec.shape[0] == 1:
        return 1.0
    # Computed in log space for numerical robustness; identical to the
    # product-of-adjacent-ratios definition.
    return float(np.exp((np.log(vec.min()) - np.log(vec.max())) / (len(vec) - 1)))


def coefficient_of_variation(values) -> float:
    """The measure ``COV``: population standard deviation over mean.

    A *heterogeneity* measure (larger = more heterogeneous).  Uses the
    population standard deviation (``ddof=0``), which is what reproduces
    the paper's Fig. 2 values (COV = 1.5 for performances
    ``(1, 1, 1, 1, 16)``).

    Examples
    --------
    >>> coefficient_of_variation([1.0, 1.0, 1.0, 1.0, 16.0])
    1.5
    """
    vec = as_positive_vector(values, name="values")
    return float(vec.std(ddof=0) / vec.mean())
