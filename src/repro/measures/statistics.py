"""Additional heterogeneity statistics (companion-work measures).

The authors' companion paper ("Statistical measures for quantifying
task and machine heterogeneity", the paper's reference [3]) explores
further distribution statistics over the performance/difficulty
vectors.  This module supplies the common ones so studies can compare
MPH/TDH against a fuller battery than Section II-D's R/G/COV:

* :func:`gini_coefficient` — inequality of the performance mass
  (0 = perfectly homogeneous, → 1 as one machine dominates),
* :func:`quartile_dispersion` — (Q3 − Q1)/(Q3 + Q1), a robust spread
  measure insensitive to the extremes R and G over-weight,
* :func:`skewness` — population skewness: does heterogeneity come from
  a few fast machines (right skew) or a few stragglers (left skew)?

All are scale-invariant (property 2) like the paper's measures; like
COV they are *heterogeneity* measures (larger = more heterogeneous),
except :func:`skewness` which is signed.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_positive_vector

__all__ = ["gini_coefficient", "quartile_dispersion", "skewness"]


def gini_coefficient(values) -> float:
    """Gini coefficient of a positive vector (0 = equal shares).

    Computed from the sorted form:
    ``sum((2k - n - 1) * v_(k)) / (n * sum(v))``.

    Examples
    --------
    >>> gini_coefficient([5.0, 5.0, 5.0])
    0.0
    >>> round(gini_coefficient([1.0, 1.0, 1.0, 1.0, 16.0]), 4)
    0.6
    """
    vec = np.sort(as_positive_vector(values, name="values"))
    n = vec.shape[0]
    if n == 1:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float(((2 * ranks - n - 1) * vec).sum() / (n * vec.sum()))


def quartile_dispersion(values) -> float:
    """Quartile coefficient of dispersion: (Q3 − Q1)/(Q3 + Q1).

    Robust to the extreme values that make ``R`` and ``G`` blind to the
    intermediate machines; 0 for homogeneous vectors.

    Examples
    --------
    >>> quartile_dispersion([4.0, 4.0, 4.0, 4.0])
    0.0
    >>> round(quartile_dispersion([1.0, 2.0, 4.0, 8.0, 16.0]), 4)
    0.6
    """
    vec = as_positive_vector(values, name="values")
    q1, q3 = np.percentile(vec, [25.0, 75.0])
    if q1 + q3 == 0:  # pragma: no cover - positive inputs forbid this
        return 0.0
    return float((q3 - q1) / (q3 + q1))


def skewness(values) -> float:
    """Population skewness (Fisher): third standardized moment.

    Zero for symmetric performance profiles; positive when a few
    machines are much *faster* than the pack, negative when a few are
    much slower.  Returns 0.0 for constant vectors (no spread to skew).

    Examples
    --------
    >>> skewness([3.0, 3.0, 3.0])
    0.0
    >>> skewness([1.0, 1.0, 1.0, 1.0, 16.0]) > 0
    True
    """
    vec = as_positive_vector(values, name="values")
    if vec.shape[0] == 1:
        return 0.0
    centered = vec - vec.mean()
    std = vec.std(ddof=0)
    # Relative threshold: a constant vector can carry float rounding
    # noise after scaling, which would otherwise explode the ratio.
    if std <= 1e-12 * vec.mean():
        return 0.0
    return float(np.mean((centered / std) ** 3))
