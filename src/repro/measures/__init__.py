"""Heterogeneity measures (the paper's core contribution).

Three independent, scale-invariant measures characterize an HC
environment given as an ECS matrix:

* :func:`mph` — machine performance homogeneity (paper eq. 3; Section II-C),
* :func:`tdh` — task difficulty homogeneity (eq. 7; Section III — the
  measure this paper introduces),
* :func:`tma` — task-machine affinity from the singular values of the
  standard-form ECS matrix (eqs. 5 and 8; Sections II-E and III-D).

Plus the comparison measures of Section II-D (:func:`min_max_ratio`,
:func:`geometric_mean_ratio`, :func:`coefficient_of_variation`) that the
paper shows *fail* the intuition property, and a one-call
:func:`characterize` that produces the full
:class:`HeterogeneityProfile` for an environment.

All functions accept either raw arrays or the labelled
:class:`~repro.core.ECSMatrix`/:class:`~repro.core.ETCMatrix` wrappers
(ETC inputs are converted through eq. 1 first; wrapper weighting
factors are honoured).
"""

from .machine_performance import (
    machine_performance,
    mph,
    machine_performance_homogeneity,
)
from .task_difficulty import (
    task_difficulty,
    tdh,
    task_difficulty_homogeneity,
)
from .affinity import (
    tma,
    task_machine_affinity,
    standard_singular_values,
)
from .alternatives import (
    average_adjacent_ratio,
    min_max_ratio,
    geometric_mean_ratio,
    coefficient_of_variation,
)
from .statistics import gini_coefficient, quartile_dispersion, skewness
from .report import HeterogeneityProfile, characterize, characterize_many
from .clusters import AffinityClusters, affinity_clusters
from .properties import (
    verify_scale_invariance,
    verify_range,
    verify_independence_shift,
)

__all__ = [
    "machine_performance",
    "mph",
    "machine_performance_homogeneity",
    "task_difficulty",
    "tdh",
    "task_difficulty_homogeneity",
    "tma",
    "task_machine_affinity",
    "standard_singular_values",
    "average_adjacent_ratio",
    "min_max_ratio",
    "geometric_mean_ratio",
    "coefficient_of_variation",
    "gini_coefficient",
    "quartile_dispersion",
    "skewness",
    "HeterogeneityProfile",
    "characterize",
    "characterize_many",
    "AffinityClusters",
    "affinity_clusters",
    "verify_scale_invariance",
    "verify_range",
    "verify_independence_shift",
]
