"""Overload resilience for the characterization service.

The serving pipeline (cache → singleflight → coalescer → batched
kernels) is fast, but speed is not resilience: a server with no
admission control converts every overload into unbounded queueing,
unbounded memory and unbounded latency for *everyone*.  This module
applies the "bound the worst case, degrade predictably" discipline the
shard engine uses against stragglers to the serving tier itself:

* :class:`AdmissionController` — a per-endpoint concurrency gate with a
  bounded pending queue.  Excess load is **shed** with a structured
  ``503`` + ``Retry-After`` (:class:`ShedError`) instead of queued
  forever; a request whose deadline expires while it waits is shed
  before it ever burns a kernel slot
  (:class:`DeadlineExceeded`);
* :class:`CapacityEstimator` — an AIMD controller that *observes*
  capacity instead of assuming it (heterogeneous hosts differ; see
  HEET in PAPERS.md): the admission limit is multiplicatively cut when
  the recent latency percentile breaches its objective and additively
  recovered while the server keeps up;
* :class:`DrainState` — the live / ready / degraded / draining state
  machine behind ``/healthz``, driven by the graceful-shutdown path in
  :meth:`repro.serve.server.CharacterizationServer.shutdown`.

Everything here runs on the event-loop thread; no locks are needed.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass, field

from ..obs import metrics as _metrics
from .loadgen import percentile

__all__ = [
    "ShedError",
    "DeadlineExceeded",
    "CapacityEstimator",
    "AdmissionController",
    "DrainState",
]


class ShedError(Exception):
    """A request rejected by the admission layer (HTTP 503).

    ``category`` is a stable machine-readable slug (``queue-full``,
    ``draining``, ``deadline-exceeded``); ``retry_after_s`` is the
    back-off hint rendered both as the ``Retry-After`` header
    (ceiled to whole seconds, per RFC 9110) and as
    ``error.retry_after_s`` in the JSON body.
    """

    status = 503

    def __init__(
        self,
        category: str,
        message: str,
        *,
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.category = category
        self.retry_after_s = float(retry_after_s)

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` delta-seconds (integer, >= 1)."""
        return str(max(1, math.ceil(self.retry_after_s)))


class DeadlineExceeded(ShedError):
    """A request shed because its deadline can no longer be met."""

    def __init__(
        self, message: str, *, retry_after_s: float = 1.0
    ) -> None:
        super().__init__(
            "deadline-exceeded", message, retry_after_s=retry_after_s
        )


class CapacityEstimator:
    """AIMD admission-limit controller fed by observed request latency.

    The estimator watches the same per-request wall times that feed the
    ``repro_serve_request_seconds`` histogram.  Every ``adjust_every``
    observations it compares the recent window's p99 against
    ``target_p99_s``:

    * breach → **multiplicative decrease**: the limit is cut by
      ``decrease`` (floored at ``min_limit``);
    * within target → **additive increase**: the limit recovers by
      ``increase`` per adjustment (capped at ``max_limit``).

    This is the classic AIMD shape: fast back-off when the host is
    slower than assumed, slow probing upwards when it keeps up — the
    server's capacity is an *observed* quantity, never a constant.

    Examples
    --------
    >>> est = CapacityEstimator(base_limit=8, target_p99_s=0.1,
    ...                         adjust_every=4, min_limit=2, window=4)
    >>> for _ in range(4):
    ...     est.observe(1.0)        # far above target: breach
    >>> est.limit
    4
    >>> for _ in range(8):
    ...     est.observe(0.001)      # healthy again: additive recovery
    >>> est.limit
    6
    """

    def __init__(
        self,
        *,
        base_limit: int = 64,
        min_limit: int = 2,
        max_limit: int = 1024,
        target_p99_s: float = 0.5,
        window: int = 128,
        adjust_every: int = 16,
        increase: int = 1,
        decrease: float = 0.5,
    ) -> None:
        if not 1 <= min_limit <= base_limit <= max_limit:
            raise ValueError(
                "limits must satisfy 1 <= min_limit <= base_limit <= "
                f"max_limit, got {min_limit}/{base_limit}/{max_limit}"
            )
        if target_p99_s <= 0:
            raise ValueError(
                f"target_p99_s must be > 0, got {target_p99_s}"
            )
        if not 0 < decrease < 1:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if adjust_every < 1 or increase < 1 or window < adjust_every:
            raise ValueError(
                "need adjust_every >= 1, increase >= 1 and "
                f"window >= adjust_every, got {adjust_every}/{increase}"
                f"/{window}"
            )
        self.base_limit = int(base_limit)
        self.min_limit = int(min_limit)
        self.max_limit = int(max_limit)
        self.target_p99_s = float(target_p99_s)
        self.increase = int(increase)
        self.decrease = float(decrease)
        self.adjust_every = int(adjust_every)
        self._window: deque[float] = deque(maxlen=int(window))
        self._since_adjust = 0
        self._limit = float(base_limit)
        self.adjustments_down = 0
        self.adjustments_up = 0

    @property
    def limit(self) -> int:
        """The current admission limit (integer, >= ``min_limit``)."""
        return max(self.min_limit, int(self._limit))

    @property
    def degraded(self) -> bool:
        """True while AIMD holds the limit below its configured base."""
        return self.limit < self.base_limit

    def observe(self, wall_s: float) -> None:
        """Feed one served request's wall time; adjusts periodically."""
        self._window.append(float(wall_s))
        self._since_adjust += 1
        if self._since_adjust >= self.adjust_every:
            self._since_adjust = 0
            self._adjust()

    def _adjust(self) -> None:
        p99 = percentile(self._window, 99)
        if p99 > self.target_p99_s:
            cut = max(float(self.min_limit), self._limit * self.decrease)
            if cut < self._limit:
                self._limit = cut
                self.adjustments_down += 1
        else:
            grown = min(
                float(self.max_limit), self._limit + self.increase
            )
            if grown > self._limit:
                self._limit = grown
                self.adjustments_up += 1

    def mean_latency_s(self) -> float:
        """Mean of the recent window (retry-hint input; 0 when empty)."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def snapshot(self) -> dict:
        """JSON-safe state for ``/healthz``."""
        return {
            "limit": self.limit,
            "base_limit": self.base_limit,
            "degraded": self.degraded,
            "window": len(self._window),
            "target_p99_ms": self.target_p99_s * 1e3,
            "adjustments_up": self.adjustments_up,
            "adjustments_down": self.adjustments_down,
        }


@dataclass
class _Gate:
    """Per-endpoint admission bookkeeping (event-loop thread only)."""

    inflight: int = 0
    waiters: deque = field(default_factory=deque)
    admitted: int = 0
    shed: int = 0
    peak_inflight: int = 0


class AdmissionController:
    """Bounded per-endpoint concurrency in front of the compute path.

    Each endpoint owns a gate with at most ``limit`` concurrently
    admitted requests plus at most ``queue_depth`` pending admissions;
    anything beyond that is **shed immediately** with
    :class:`ShedError` — the queue is the only place load may wait,
    and it is bounded.  ``limit`` is either a static ceiling or, when
    an estimator is attached, the live AIMD value.

    Cache hits and singleflight joins never pass through this gate:
    admission protects *kernel work*, and a request that can be served
    from memoized bytes costs (nearly) none.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        queue_depth: int = 256,
        estimators: dict[str, CapacityEstimator] | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}"
            )
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self.estimators = dict(estimators or {})
        self._gates: dict[str, _Gate] = {}

    def _gate(self, endpoint: str) -> _Gate:
        gate = self._gates.get(endpoint)
        if gate is None:
            gate = self._gates[endpoint] = _Gate()
        return gate

    def limit(self, endpoint: str) -> int:
        """The live admission limit of one endpoint."""
        estimator = self.estimators.get(endpoint)
        if estimator is not None:
            return min(self.max_inflight, estimator.limit)
        return self.max_inflight

    def retry_after_s(self, endpoint: str) -> float:
        """Back-off hint: expected time to drain the pending queue."""
        gate = self._gate(endpoint)
        estimator = self.estimators.get(endpoint)
        per_request = estimator.mean_latency_s() if estimator else 0.0
        if per_request <= 0:
            per_request = 0.05
        waiting = len(gate.waiters) + 1
        return max(
            0.1, waiting * per_request / max(1, self.limit(endpoint))
        )

    async def admit(self, endpoint: str, deadline=None, trace=None) -> None:
        """Acquire one admission slot; raises instead of queuing unboundedly.

        ``trace`` is an optional :class:`repro.obs.RequestTrace`: a
        request that has to *wait* for a slot records the wait as its
        ``queue_wait_s`` stage (the uncontended grant path records
        nothing and pays nothing).

        Raises
        ------
        ShedError
            When the pending queue is already full (``queue-full``).
        DeadlineExceeded
            When ``deadline`` (a started :class:`repro.robust.Deadline`)
            expires before a slot frees up.
        """
        gate = self._gate(endpoint)
        if gate.inflight < self.limit(endpoint):
            self._grant(endpoint, gate)
            return
        if len(gate.waiters) >= self.queue_depth:
            gate.shed += 1
            retry = self.retry_after_s(endpoint)
            _metrics.count_serve_shed(endpoint, "queue-full")
            raise ShedError(
                "queue-full",
                f"endpoint {endpoint!r} is at its admission limit "
                f"({self.limit(endpoint)} in flight, "
                f"{len(gate.waiters)} queued); retry in "
                f"{retry:.2f}s",
                retry_after_s=retry,
            )
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        gate.waiters.append(future)
        timeout = deadline.remaining() if deadline is not None else None
        wait_t0 = time.perf_counter()
        try:
            if timeout is None:
                await future
            else:
                await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; if the grant raced the
            # cancellation, hand the slot straight to the next waiter.
            if future.done() and not future.cancelled():
                self.release(endpoint)
            else:
                try:
                    gate.waiters.remove(future)
                except ValueError:
                    pass
            gate.shed += 1
            retry = self.retry_after_s(endpoint)
            _metrics.count_serve_deadline_exceeded(endpoint, "admission")
            if trace is not None:
                trace.add("queue_wait_s", time.perf_counter() - wait_t0)
            raise DeadlineExceeded(
                f"deadline expired after {timeout * 1e3:.1f}ms waiting "
                f"for admission to {endpoint!r}",
                retry_after_s=retry,
            ) from None
        # Granted by release(); inflight was already incremented there.
        if trace is not None:
            trace.add("queue_wait_s", time.perf_counter() - wait_t0)

    def _grant(self, endpoint: str, gate: _Gate) -> None:
        gate.inflight += 1
        gate.peak_inflight = max(gate.peak_inflight, gate.inflight)
        gate.admitted += 1
        _metrics.count_serve_admitted(endpoint)
        estimator = self.estimators.get(endpoint)
        if estimator is not None:
            _metrics.set_serve_admission_limit(endpoint, estimator.limit)

    def release(self, endpoint: str) -> None:
        """Free one slot and grant the oldest live waiter, if any."""
        gate = self._gate(endpoint)
        gate.inflight = max(0, gate.inflight - 1)
        while gate.waiters and gate.inflight < self.limit(endpoint):
            future = gate.waiters.popleft()
            if future.done():  # cancelled by a deadline timeout
                continue
            self._grant(endpoint, gate)
            future.set_result(None)

    def observe(self, endpoint: str, wall_s: float) -> None:
        """Feed one served request's wall time to the AIMD estimator."""
        estimator = self.estimators.get(endpoint)
        if estimator is not None:
            before = estimator.limit
            estimator.observe(wall_s)
            if estimator.limit != before:
                _metrics.set_serve_admission_limit(
                    endpoint, estimator.limit
                )
                # A freshly raised limit can unblock queued waiters.
                if estimator.limit > before:
                    gate = self._gate(endpoint)
                    gate.inflight += 1  # balance release()'s decrement
                    self.release(endpoint)

    @property
    def degraded(self) -> bool:
        """True while any endpoint's AIMD limit is below its base."""
        return any(e.degraded for e in self.estimators.values())

    def stats(self) -> dict:
        """JSON-safe per-endpoint snapshot for ``/healthz``."""
        out: dict = {}
        for endpoint, gate in sorted(self._gates.items()):
            entry = {
                "limit": self.limit(endpoint),
                "inflight": gate.inflight,
                "queued": len(gate.waiters),
                "queue_depth": self.queue_depth,
                "admitted": gate.admitted,
                "shed": gate.shed,
                "peak_inflight": gate.peak_inflight,
            }
            estimator = self.estimators.get(endpoint)
            if estimator is not None:
                entry["estimator"] = estimator.snapshot()
            out[endpoint] = entry
        return out


class DrainState:
    """The live / ready / draining state machine behind ``/healthz``.

    * **live** — the process is up (always true while it can answer);
    * **ready** — accepting new work (false once draining starts);
    * **draining** — graceful shutdown in progress: the listener is
      closed, in-flight requests run to completion under the drain
      timeout, the coalescer is flushed, then the process exits 0.

    The separation is the standard kubernetes probe split: a draining
    server must *fail readiness* (so balancers stop routing to it)
    while *passing liveness* (so the orchestrator does not kill it
    mid-drain).
    """

    def __init__(self) -> None:
        self._draining = False
        self.started_at = time.time()
        self.drain_started_at: float | None = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def ready(self) -> bool:
        return not self._draining

    def begin_drain(self) -> bool:
        """Mark draining; returns False when already draining."""
        if self._draining:
            return False
        self._draining = True
        self.drain_started_at = time.time()
        _metrics.count_serve_drain("started")
        return True

    def uptime_s(self) -> float:
        return time.time() - self.started_at

    def status(self, *, degraded: bool = False) -> str:
        """The one-word health status: ok, degraded or draining."""
        if self._draining:
            return "draining"
        return "degraded" if degraded else "ok"
