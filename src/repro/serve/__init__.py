"""The characterization service (``repro-hc serve``).

An asyncio JSON-over-HTTP front end for the library's batched
characterization kernels:

* :mod:`repro.serve.protocol` — request/response schema, validation;
* :mod:`repro.serve.cache` — content-addressed result cache (canonical
  matrix bytes → SHA-256 key, in-memory LRU with optional disk spill);
* :mod:`repro.serve.coalesce` — micro-batching queue that stacks
  concurrent same-shape requests into one (N, T, M) kernel call;
* :mod:`repro.serve.server` — the HTTP server, request router and
  serving glue (singleflight, quarantine, metrics);
* :mod:`repro.serve.loadgen` — seedable trace generation and replay
  for tests, chaos drills and the ``serve_latency`` bench case.
"""

from .cache import (
    CACHE_KEY_VERSION,
    ResultCache,
    canonical_matrix_bytes,
    canonical_options,
    matrix_cache_key,
)
from .coalesce import CoalesceResult, Coalescer, ServeFault
from .loadgen import (
    TRACE_SCHEMA,
    ReplayReport,
    RequestOutcome,
    TraceRequest,
    generate_trace,
    latency_study,
    load_trace,
    percentile,
    replay_trace,
    save_trace,
)
from .protocol import (
    ENDPOINTS,
    SCHEMA,
    ProtocolError,
    ServeRequest,
    decode_json,
    encode_json,
    error_body,
    json_safe,
    parse_request,
    result_body,
)
from .server import (
    CharacterizationServer,
    ServeConfig,
    ServerThread,
)

__all__ = [
    "CACHE_KEY_VERSION",
    "CharacterizationServer",
    "CoalesceResult",
    "Coalescer",
    "ENDPOINTS",
    "ProtocolError",
    "ReplayReport",
    "RequestOutcome",
    "ResultCache",
    "SCHEMA",
    "ServeConfig",
    "ServeFault",
    "ServeRequest",
    "ServerThread",
    "TRACE_SCHEMA",
    "TraceRequest",
    "canonical_matrix_bytes",
    "canonical_options",
    "decode_json",
    "encode_json",
    "error_body",
    "generate_trace",
    "json_safe",
    "latency_study",
    "load_trace",
    "matrix_cache_key",
    "parse_request",
    "percentile",
    "replay_trace",
    "result_body",
    "save_trace",
]
