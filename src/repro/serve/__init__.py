"""The characterization service (``repro-hc serve``).

An asyncio JSON-over-HTTP front end for the library's batched
characterization kernels:

* :mod:`repro.serve.protocol` — request/response schema, validation;
* :mod:`repro.serve.cache` — content-addressed result cache (canonical
  matrix bytes → SHA-256 key, in-memory LRU with optional disk spill);
* :mod:`repro.serve.coalesce` — micro-batching queue that stacks
  concurrent same-shape requests into one (N, T, M) kernel call;
* :mod:`repro.serve.resilience` — overload behavior: admission
  control with bounded queueing, AIMD capacity estimation, deadline
  shedding and the graceful-drain state machine;
* :mod:`repro.serve.server` — the HTTP server, request router and
  serving glue (singleflight, quarantine, metrics);
* :mod:`repro.serve.loadgen` — seedable trace generation and replay
  for tests, chaos drills and the ``serve_latency`` /
  ``serve_overload`` bench cases.
"""

from .cache import (
    CACHE_KEY_VERSION,
    ResultCache,
    canonical_matrix_bytes,
    canonical_options,
    matrix_cache_key,
)
from .coalesce import CoalesceResult, Coalescer, ServeFault
from .loadgen import (
    TRACE_SCHEMA,
    ReplayReport,
    RequestOutcome,
    TraceRequest,
    estimate_capacity,
    generate_trace,
    latency_study,
    load_trace,
    overload_drill,
    percentile,
    replay_trace,
    save_trace,
)
from .protocol import (
    ENDPOINTS,
    SCHEMA,
    ProtocolError,
    ServeRequest,
    decode_json,
    encode_json,
    error_body,
    json_safe,
    parse_request,
    result_body,
)
from .resilience import (
    AdmissionController,
    CapacityEstimator,
    DeadlineExceeded,
    DrainState,
    ShedError,
)
from .server import (
    CharacterizationServer,
    ServeConfig,
    ServerThread,
)

__all__ = [
    "AdmissionController",
    "CACHE_KEY_VERSION",
    "CapacityEstimator",
    "CharacterizationServer",
    "CoalesceResult",
    "Coalescer",
    "DeadlineExceeded",
    "DrainState",
    "ENDPOINTS",
    "ProtocolError",
    "ReplayReport",
    "RequestOutcome",
    "ResultCache",
    "SCHEMA",
    "ServeConfig",
    "ServeFault",
    "ServeRequest",
    "ServerThread",
    "ShedError",
    "TRACE_SCHEMA",
    "TraceRequest",
    "canonical_matrix_bytes",
    "canonical_options",
    "decode_json",
    "encode_json",
    "error_body",
    "estimate_capacity",
    "generate_trace",
    "json_safe",
    "latency_study",
    "load_trace",
    "matrix_cache_key",
    "overload_drill",
    "parse_request",
    "percentile",
    "replay_trace",
    "result_body",
    "save_trace",
]
