"""Request/response schemas of the characterization service.

JSON over HTTP, one document per request.  Three POST endpoints:

``/v1/characterize``
    ``{"matrix": [[...]], "tol"?, "tma_fallback"?, "policy"?,
    "backend"?}`` → the paper measures of one environment.
``/v1/standardize``
    ``{"matrix": [[...]], "tol"?, "max_iterations"?, "policy"?,
    "backend"?}`` → the Sinkhorn standard form of one environment.
``/v1/recommend-heuristic``
    ``{"matrix": [[...]], "tol"?, "policy"?, "backend"?}`` → the
    measure-driven mapping-heuristic recommendation.

``backend`` selects the registered kernel backend
(:mod:`repro.backends`) running the request; it defaults to
``"numpy"`` and is part of the cache identity, so the same matrix
served by two backends occupies two cache entries.

Every endpoint additionally accepts ``deadline_ms`` — the caller's
end-to-end latency budget in milliseconds.  A request that can no
longer meet its deadline is shed with a structured ``503`` before it
burns a kernel slot; see :mod:`repro.serve.resilience` and
``docs/SERVING.md``.  The deadline is *not* part of the cache or
coalescing identity (it changes whether work runs, never its result).

Every endpoint also accepts ``debug_timings`` (boolean): when true the
success response gains a ``debug`` section with the request's trace id
and a per-stage latency breakdown.  Like the deadline, it is excluded
from the cache and coalescing identity — the canonical result bytes
stay bit-identical and the debug section is attached per response.

Every response carries ``"schema": "repro-serve/1"``.  Success bodies
hold the endpoint name and a ``"result"`` object; failures hold an
``"error"`` object with a stable fault ``category`` — protocol-level
categories ``bad-request`` / ``not-found`` / ``internal``, or one of
the :data:`repro.robust.FAULT_CATEGORIES` slugs when the request was
quarantined by the robust pipeline.

Responses are rendered with :func:`encode_json` (sorted keys, compact
separators), so two requests that produce the same result document
produce **bit-identical** bodies — the property the coalescer and the
content-addressed cache rely on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SCHEMA",
    "ENDPOINTS",
    "ProtocolError",
    "ServeRequest",
    "parse_request",
    "encode_json",
    "decode_json",
    "error_body",
    "result_body",
    "json_safe",
]

SCHEMA = "repro-serve/1"

#: Endpoint slug → allowed option names beyond ``matrix``.
ENDPOINTS = {
    "characterize": (
        "tol", "tma_fallback", "policy", "backend", "deadline_ms",
        "debug_timings",
    ),
    "standardize": (
        "tol", "max_iterations", "policy", "backend", "deadline_ms",
        "debug_timings",
    ),
    "recommend-heuristic": (
        "tol", "policy", "backend", "deadline_ms", "debug_timings",
    ),
}

_POLICIES = ("quarantine", "repair")
_TMA_FALLBACKS = ("limit", "column", "raise")


class ProtocolError(ValueError):
    """A malformed request; ``status`` is the HTTP code to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ServeRequest:
    """One validated service request.

    ``matrix`` is the float64 C-contiguous environment; ``options`` are
    the normalized kernel options (defaults filled in), which also form
    part of the request's cache identity.  ``deadline_ms`` is the
    caller's latency budget — deliberately *not* part of ``options``:
    two requests for the same matrix under different deadlines must
    share a cache entry and a coalescing group, because the deadline
    changes *whether* the work runs, never its result.
    ``debug_timings`` follows the same rule: it asks for a per-request
    latency breakdown in the response body, which changes what is
    *reported*, never what is computed — so it stays out of the cache
    and coalescing identity and the debug section is attached after the
    canonical (cacheable) body is produced.
    """

    endpoint: str
    matrix: np.ndarray = field(repr=False)
    options: dict
    deadline_ms: float | None = None
    debug_timings: bool = False

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape  # type: ignore[return-value]


def _parse_matrix(payload: dict) -> np.ndarray:
    if "matrix" not in payload:
        raise ProtocolError("request body needs a 'matrix' field")
    try:
        matrix = np.asarray(payload["matrix"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"'matrix' is not numeric: {exc}") from exc
    if matrix.ndim != 2 or 0 in matrix.shape:
        raise ProtocolError(
            "'matrix' must be a non-empty 2-D array of ETC values, got "
            f"shape {matrix.shape}"
        )
    return np.ascontiguousarray(matrix)


def parse_request(endpoint: str, payload) -> ServeRequest:
    """Validate one request document into a :class:`ServeRequest`.

    Raises :class:`ProtocolError` on unknown endpoints, missing or
    non-numeric matrices, unknown option names and out-of-range option
    values.  Matrix *values* are not screened here — corrupt data (NaN,
    zero lines, ...) flows to the robust pipeline, which quarantines it
    with a precise taxonomy category instead of a generic 400.
    """
    if endpoint not in ENDPOINTS:
        raise ProtocolError(f"unknown endpoint {endpoint!r}", status=404)
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    allowed = ENDPOINTS[endpoint]
    unknown = sorted(set(payload) - set(allowed) - {"matrix"})
    if unknown:
        raise ProtocolError(
            f"unknown option(s) {unknown} for endpoint {endpoint!r}; "
            f"allowed: {sorted(allowed)}"
        )
    matrix = _parse_matrix(payload)

    options: dict = {}
    tol = payload.get("tol", 1e-8)
    if not isinstance(tol, (int, float)) or not 0 < float(tol) < 1:
        raise ProtocolError(f"'tol' must be a float in (0, 1), got {tol!r}")
    options["tol"] = float(tol)

    policy = payload.get("policy", "quarantine")
    if policy not in _POLICIES:
        raise ProtocolError(
            f"'policy' must be one of {list(_POLICIES)}, got {policy!r}"
        )
    options["policy"] = policy

    from ..backends import list_backends

    backend = payload.get("backend", "numpy")
    if backend not in list_backends():
        raise ProtocolError(
            f"'backend' must be one of {list(list_backends())}, "
            f"got {backend!r}"
        )
    options["backend"] = backend

    if endpoint == "characterize":
        fallback = payload.get("tma_fallback", "limit")
        if fallback not in _TMA_FALLBACKS:
            raise ProtocolError(
                f"'tma_fallback' must be one of {list(_TMA_FALLBACKS)}, "
                f"got {fallback!r}"
            )
        options["tma_fallback"] = fallback
    if endpoint == "standardize":
        max_iterations = payload.get("max_iterations", 100_000)
        if (
            not isinstance(max_iterations, int)
            or isinstance(max_iterations, bool)
            or max_iterations < 1
        ):
            raise ProtocolError(
                "'max_iterations' must be a positive integer, got "
                f"{max_iterations!r}"
            )
        options["max_iterations"] = max_iterations

    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not math.isfinite(float(deadline_ms))
            or float(deadline_ms) <= 0
        ):
            raise ProtocolError(
                "'deadline_ms' must be a positive finite number of "
                f"milliseconds, got {deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)

    debug_timings = payload.get("debug_timings", False)
    if not isinstance(debug_timings, bool):
        raise ProtocolError(
            f"'debug_timings' must be a boolean, got {debug_timings!r}"
        )
    return ServeRequest(
        endpoint=endpoint,
        matrix=matrix,
        options=options,
        deadline_ms=deadline_ms,
        debug_timings=debug_timings,
    )


def json_safe(value):
    """Recursively convert numpy scalars/arrays and NaN for JSON.

    NaN / ±inf become ``None`` (strict-JSON clients choke on the bare
    ``NaN`` token Python's encoder would otherwise emit).
    """
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return json_safe(value.tolist())
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        return value if math.isfinite(value) else None
    return value


def encode_json(document: dict) -> bytes:
    """Deterministic JSON bytes (sorted keys, compact separators)."""
    return (
        json.dumps(
            json_safe(document),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        + "\n"
    ).encode("utf-8")


def decode_json(body: bytes):
    """Parse a request body; raises :class:`ProtocolError` on bad JSON."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


def result_body(endpoint: str, result: dict) -> bytes:
    """The canonical success body for one endpoint result."""
    return encode_json(
        {"schema": SCHEMA, "endpoint": endpoint, "result": result}
    )


def error_body(
    endpoint: str | None,
    category: str,
    message: str,
    *,
    retry_after_s: float | None = None,
) -> bytes:
    """The canonical error body (stable ``category`` + human message).

    Shed responses (503) carry ``retry_after_s`` in the error object —
    the same back-off hint as the ``Retry-After`` header, but with
    sub-second resolution for clients that parse the body.
    """
    error: dict = {"category": category, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = round(float(retry_after_s), 3)
    document = {"schema": SCHEMA, "error": error}
    if endpoint is not None:
        document["endpoint"] = endpoint
    return encode_json(document)
