"""Micro-batching request coalescer for the characterization service.

The 22–25x win of the batched ``(N, T, M)`` kernels (PR 1) only
materializes when N > 1.  A long-running service gets that N from
*concurrency*: requests that arrive within a short linger window and
share a coalescing group — same matrix shape and same kernel options —
are stacked into one batched kernel call instead of N scalar ones.

:class:`Coalescer` implements the standard micro-batching queue:

* the first request of a group arms a **linger timer**
  (``linger_s``); everything that joins the group before it fires
  shares the flush;
* a group that reaches ``max_batch`` flushes immediately (bounded
  latency *and* bounded stack memory);
* the flush runs the (synchronous, numpy-heavy) batch runner in the
  event loop's default executor, so the loop keeps accepting requests
  while kernels crunch.

The runner returns one entry per submitted matrix — a result payload,
or an exception (typically :class:`ServeFault`, carrying a
:data:`repro.robust.FAULT_CATEGORIES` slug) that is re-raised to that
caller only.  A faulty member therefore never poisons the healthy
requests sharing its batch; that is the per-request quarantine
semantics of :mod:`repro.robust` lifted into the serving layer.

**Deadline propagation.**  ``submit`` accepts an optional started
:class:`repro.robust.Deadline`.  At flush time, members whose deadline
has already expired are shed with
:class:`repro.serve.resilience.DeadlineExceeded` *before* the kernel
runs — their callers have given up, so spending kernel time on them
would only slow their batch-mates.  The surviving members' tightest
remaining deadline is threaded into the runner options as
``deadline_s``, which the server-side runners turn into a
:class:`repro.robust.Budget` so the batched kernel itself stops at the
wall instead of burning its full iteration budget.  This is safe for
batch-mates with looser deadlines: a deadline can only freeze a slice
as a structured ``converged=False`` partial outcome, never corrupt it.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as _metrics
from .cache import canonical_options
from .protocol import ServeRequest
from .resilience import DeadlineExceeded

__all__ = ["Coalescer", "ServeFault", "CoalesceResult"]


class ServeFault(Exception):
    """A per-request failure with a stable fault category.

    ``category`` is a :data:`repro.robust.FAULT_CATEGORIES` slug (or a
    protocol-level category); ``status`` the HTTP code to answer with.
    """

    def __init__(
        self, category: str, message: str, *, status: int = 422
    ) -> None:
        super().__init__(message)
        self.category = category
        self.status = status


@dataclass(frozen=True)
class CoalesceResult:
    """One request's outcome plus how it was computed.

    ``linger_s`` is how long *this member* waited between submission and
    its batch flushing; ``kernel_s`` the batched kernel's wall time
    (shared by every member of the batch).  Together they feed the
    per-request ``debug.timings`` breakdown.
    """

    payload: object
    batch_size: int
    linger_s: float = 0.0
    kernel_s: float = 0.0


@dataclass
class _PendingGroup:
    options: dict
    matrices: list = field(default_factory=list)
    futures: list = field(default_factory=list)
    deadlines: list = field(default_factory=list)
    submitted: list = field(default_factory=list)
    traces: list = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class Coalescer:
    """Group concurrent same-shape requests into batched kernel calls.

    Parameters
    ----------
    runner : callable
        ``runner(options, matrices) -> list`` — synchronous batch
        executor (one entry per matrix: payload or Exception).  Runs in
        the event loop's default executor.
    endpoint : str
        Metric label for this coalescer's batches.
    linger_s : float
        How long the first request of a group waits for company.
    max_batch : int
        Flush threshold; also the largest stack a single kernel call
        materializes.
    tracer : repro.obs.Tracer, optional
        When set, every flushed batch emits one ``serve.kernel`` span
        *linked* to the request spans it served (fan-in), so a single
        slow batch explains N slow responses.
    """

    def __init__(
        self,
        runner,
        *,
        endpoint: str,
        linger_s: float = 0.002,
        max_batch: int = 64,
        tracer=None,
    ) -> None:
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.runner = runner
        self.endpoint = endpoint
        self.linger_s = float(linger_s)
        self.max_batch = int(max_batch)
        self.tracer = tracer
        self._groups: dict[tuple, _PendingGroup] = {}
        self.batches_flushed = 0
        self.requests_coalesced = 0
        self.deadline_shed = 0

    # -- submission ----------------------------------------------------

    def group_key(self, request: ServeRequest) -> tuple:
        """The coalescing identity: endpoint + shape + kernel options."""
        return (
            self.endpoint,
            request.shape,
            canonical_options(request.options),
        )

    async def submit(
        self, request: ServeRequest, deadline=None, trace=None
    ) -> CoalesceResult:
        """Queue one request; resolves when its batch has been run.

        ``deadline`` is an optional started
        :class:`repro.robust.Deadline`; a member whose deadline expires
        before its group flushes is shed with
        :class:`~repro.serve.resilience.DeadlineExceeded` instead of
        running, and the batch kernel runs under the tightest surviving
        deadline.

        ``trace`` is an optional
        :class:`repro.obs.TraceContext` identifying the request span
        this member belongs to; the batch span links back to it.

        Raises whatever exception the runner assigned to this request's
        slot (or the runner's own exception if the whole batch failed).
        """
        loop = asyncio.get_running_loop()
        key = self.group_key(request)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _PendingGroup(
                options=dict(request.options)
            )
            group.timer = loop.call_later(
                self.linger_s, self._flush_now, key
            )
        future: asyncio.Future = loop.create_future()
        group.matrices.append(np.asarray(request.matrix, dtype=np.float64))
        group.futures.append(future)
        group.deadlines.append(deadline)
        group.submitted.append(time.perf_counter())
        group.traces.append(trace)
        if len(group.matrices) >= self.max_batch:
            self._flush_now(key)
        return await future

    # -- flushing ------------------------------------------------------

    def _flush_now(self, key: tuple) -> None:
        """Detach the group and schedule its batch (loop thread only)."""
        group = self._groups.pop(key, None)
        if group is None:
            return  # already flushed by the max-batch path
        if group.timer is not None:
            group.timer.cancel()
        asyncio.get_running_loop().create_task(self._run_batch(group))

    def _shed_expired(
        self, group: _PendingGroup
    ) -> tuple[list, list, list, list]:
        """Fail expired members; returns the surviving parallel lists
        (matrices, futures, submit times, trace contexts).

        The tightest surviving deadline (if any) is threaded into
        ``group.options["deadline_s"]`` for the runner.
        """
        matrices: list = []
        futures: list = []
        submitted: list = []
        traces: list = []
        tightest: float | None = None
        for matrix, future, deadline, submit_t, trace in zip(
            group.matrices,
            group.futures,
            group.deadlines,
            group.submitted,
            group.traces,
        ):
            if deadline is not None and deadline.expired():
                self.deadline_shed += 1
                _metrics.count_serve_deadline_exceeded(
                    self.endpoint, "coalesce"
                )
                if not future.done():
                    future.set_exception(
                        DeadlineExceeded(
                            "deadline expired while the request "
                            "lingered in a coalescing group; the "
                            "kernel was never run for it"
                        )
                    )
                continue
            if deadline is not None:
                remaining = deadline.remaining()
                if tightest is None or remaining < tightest:
                    tightest = remaining
            matrices.append(matrix)
            futures.append(future)
            submitted.append(submit_t)
            traces.append(trace)
        if tightest is not None:
            group.options["deadline_s"] = tightest
        return matrices, futures, submitted, traces

    async def _run_batch(self, group: _PendingGroup) -> None:
        matrices, futures, submitted, traces = self._shed_expired(group)
        if not matrices:  # every member expired: nothing to compute
            return
        size = len(matrices)
        self.batches_flushed += 1
        self.requests_coalesced += size
        _metrics.observe_coalesce_batch(self.endpoint, size)
        _metrics.count_serve_kernel(self.endpoint)
        loop = asyncio.get_running_loop()
        flush_t = time.perf_counter()
        lingers = [max(0.0, flush_t - submit_t) for submit_t in submitted]
        try:
            results = await loop.run_in_executor(
                None, self.runner, group.options, matrices
            )
            kernel_s = time.perf_counter() - flush_t
            if len(results) != size:
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{size} requests"
                )
        except Exception as exc:  # runner blew up: fail the whole batch
            self._emit_batch_span(
                traces,
                size,
                kernel_s=time.perf_counter() - flush_t,
                error=f"{type(exc).__name__}: {exc}",
            )
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self._emit_batch_span(traces, size, kernel_s=kernel_s)
        for future, result, linger_s in zip(futures, results, lingers):
            if future.done():  # caller went away (cancelled request)
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(
                    CoalesceResult(
                        result, size, linger_s=linger_s, kernel_s=kernel_s
                    )
                )

    def _emit_batch_span(
        self, traces, size, *, kernel_s, error=None
    ) -> None:
        """One fan-in span per flushed batch, linked to its members.

        The batch span is parented under the first traced member (a
        batch has no single request parent) and carries a link to every
        member's request span, so trace tooling can walk from any slow
        response to the batch that computed it and back out to its
        batch-mates.
        """
        tracer = self.tracer
        if tracer is None:
            return
        members = [trace for trace in traces if trace is not None]
        if not members:
            return
        context = members[0].child()
        tracer.emit_span(
            "serve.kernel",
            context,
            wall_s=kernel_s,
            meta={"endpoint": self.endpoint, "batch_size": size},
            links=[member.link() for member in members],
            error=error,
        )

    @property
    def pending(self) -> int:
        """Requests currently lingering in un-flushed groups."""
        return sum(len(g.matrices) for g in self._groups.values())

    async def drain(self) -> None:
        """Flush every pending group immediately (shutdown path)."""
        for key in list(self._groups):
            self._flush_now(key)
        # Yield once so the flush tasks get to run their executors.
        await asyncio.sleep(0)
