"""Micro-batching request coalescer for the characterization service.

The 22–25x win of the batched ``(N, T, M)`` kernels (PR 1) only
materializes when N > 1.  A long-running service gets that N from
*concurrency*: requests that arrive within a short linger window and
share a coalescing group — same matrix shape and same kernel options —
are stacked into one batched kernel call instead of N scalar ones.

:class:`Coalescer` implements the standard micro-batching queue:

* the first request of a group arms a **linger timer**
  (``linger_s``); everything that joins the group before it fires
  shares the flush;
* a group that reaches ``max_batch`` flushes immediately (bounded
  latency *and* bounded stack memory);
* the flush runs the (synchronous, numpy-heavy) batch runner in the
  event loop's default executor, so the loop keeps accepting requests
  while kernels crunch.

The runner returns one entry per submitted matrix — a result payload,
or an exception (typically :class:`ServeFault`, carrying a
:data:`repro.robust.FAULT_CATEGORIES` slug) that is re-raised to that
caller only.  A faulty member therefore never poisons the healthy
requests sharing its batch; that is the per-request quarantine
semantics of :mod:`repro.robust` lifted into the serving layer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as _metrics
from .cache import canonical_options
from .protocol import ServeRequest

__all__ = ["Coalescer", "ServeFault", "CoalesceResult"]


class ServeFault(Exception):
    """A per-request failure with a stable fault category.

    ``category`` is a :data:`repro.robust.FAULT_CATEGORIES` slug (or a
    protocol-level category); ``status`` the HTTP code to answer with.
    """

    def __init__(
        self, category: str, message: str, *, status: int = 422
    ) -> None:
        super().__init__(message)
        self.category = category
        self.status = status


@dataclass(frozen=True)
class CoalesceResult:
    """One request's outcome plus how it was computed."""

    payload: object
    batch_size: int


@dataclass
class _PendingGroup:
    options: dict
    matrices: list = field(default_factory=list)
    futures: list = field(default_factory=list)
    timer: asyncio.TimerHandle | None = None


class Coalescer:
    """Group concurrent same-shape requests into batched kernel calls.

    Parameters
    ----------
    runner : callable
        ``runner(options, matrices) -> list`` — synchronous batch
        executor (one entry per matrix: payload or Exception).  Runs in
        the event loop's default executor.
    endpoint : str
        Metric label for this coalescer's batches.
    linger_s : float
        How long the first request of a group waits for company.
    max_batch : int
        Flush threshold; also the largest stack a single kernel call
        materializes.
    """

    def __init__(
        self,
        runner,
        *,
        endpoint: str,
        linger_s: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.runner = runner
        self.endpoint = endpoint
        self.linger_s = float(linger_s)
        self.max_batch = int(max_batch)
        self._groups: dict[tuple, _PendingGroup] = {}
        self.batches_flushed = 0
        self.requests_coalesced = 0

    # -- submission ----------------------------------------------------

    def group_key(self, request: ServeRequest) -> tuple:
        """The coalescing identity: endpoint + shape + kernel options."""
        return (
            self.endpoint,
            request.shape,
            canonical_options(request.options),
        )

    async def submit(self, request: ServeRequest) -> CoalesceResult:
        """Queue one request; resolves when its batch has been run.

        Raises whatever exception the runner assigned to this request's
        slot (or the runner's own exception if the whole batch failed).
        """
        loop = asyncio.get_running_loop()
        key = self.group_key(request)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _PendingGroup(
                options=dict(request.options)
            )
            group.timer = loop.call_later(
                self.linger_s, self._flush_now, key
            )
        future: asyncio.Future = loop.create_future()
        group.matrices.append(np.asarray(request.matrix, dtype=np.float64))
        group.futures.append(future)
        if len(group.matrices) >= self.max_batch:
            self._flush_now(key)
        return await future

    # -- flushing ------------------------------------------------------

    def _flush_now(self, key: tuple) -> None:
        """Detach the group and schedule its batch (loop thread only)."""
        group = self._groups.pop(key, None)
        if group is None:
            return  # already flushed by the max-batch path
        if group.timer is not None:
            group.timer.cancel()
        asyncio.get_running_loop().create_task(self._run_batch(group))

    async def _run_batch(self, group: _PendingGroup) -> None:
        size = len(group.matrices)
        self.batches_flushed += 1
        self.requests_coalesced += size
        _metrics.observe_coalesce_batch(self.endpoint, size)
        _metrics.count_serve_kernel(self.endpoint)
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None, self.runner, group.options, group.matrices
            )
            if len(results) != size:
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{size} requests"
                )
        except Exception as exc:  # runner blew up: fail the whole batch
            for future in group.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(group.futures, results):
            if future.done():  # caller went away (cancelled request)
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(CoalesceResult(result, size))

    async def drain(self) -> None:
        """Flush every pending group immediately (shutdown path)."""
        for key in list(self._groups):
            self._flush_now(key)
        # Yield once so the flush tasks get to run their executors.
        await asyncio.sleep(0)
