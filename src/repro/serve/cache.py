"""Content-addressed result cache for the characterization service.

What-if and sensitivity studies resubmit *the same* ETC matrix over and
over (perturbed neighbours of a base environment, repeated scrapes of a
dashboard), so the service memoizes finished responses behind a
content-addressed key: the canonical bytes of the matrix plus the
canonical JSON of the request options, hashed with SHA-256.

Canonicalization (:func:`canonical_matrix_bytes`) makes the key a
function of the matrix *values*, not of the accidental representation:

* any dtype is cast to ``float64`` first, so ``float32`` and ``int``
  inputs that denote the same numbers share a key;
* Fortran-ordered / strided views are copied to C order, so the memory
  layout never leaks into the digest;
* the shape is folded in explicitly, so a ``(2, 3)`` and a ``(3, 2)``
  matrix with the same flat bytes stay distinct.

The digest is SHA-256 over those bytes — **never** Python ``hash()``,
whose per-process randomization (PYTHONHASHSEED) would make keys
useless across processes or restarts.  Any single-element perturbation
changes the float64 bit pattern and therefore the key.

:class:`ResultCache` is a thread-safe LRU over the finished response
*bytes* (so cache hits are bit-identical to the response the first
caller received), with an optional disk spill directory: entries
evicted from memory are written to ``<spill_dir>/<key>.json`` and
promoted back on the next miss.
"""

from __future__ import annotations

import hashlib
import json
import threading
import warnings
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..obs import metrics as _metrics

__all__ = [
    "CACHE_KEY_VERSION",
    "canonical_matrix_bytes",
    "canonical_options",
    "matrix_cache_key",
    "ResultCache",
]

#: Folded into every digest so a future change to the canonical form
#: (dtype, layout, option encoding) invalidates old disk spills instead
#: of silently colliding with them.  Version 2: the ``backend`` request
#: option joined the normalized option set, so every key changed.
CACHE_KEY_VERSION = "repro-serve-key/2"


def canonical_matrix_bytes(matrix) -> bytes:
    """The value-canonical byte string of a 2-D matrix.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.array([[1, 2], [3, 4]], dtype=np.float32)
    >>> b = np.asfortranarray(a.astype(np.float64))
    >>> canonical_matrix_bytes(a) == canonical_matrix_bytes(b)
    True
    """
    arr = np.ascontiguousarray(np.asarray(matrix, dtype=np.float64))
    if arr.ndim != 2:
        raise ValueError(
            f"cache keys are defined for 2-D matrices, got ndim={arr.ndim}"
        )
    header = f"{arr.shape[0]}x{arr.shape[1]};".encode("ascii")
    return header + arr.tobytes(order="C")


def canonical_options(options: dict | None) -> str:
    """Canonical JSON of the request options (sorted keys, compact).

    Insertion order never matters:

    >>> canonical_options({"tol": 1e-8, "zeros": "limit"}) == \\
    ...     canonical_options({"zeros": "limit", "tol": 1e-8})
    True
    """
    return json.dumps(
        options or {}, sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def matrix_cache_key(matrix, *, endpoint: str = "", options=None) -> str:
    """SHA-256 hex key of (endpoint, canonical matrix, canonical options).

    Stable across processes and Python versions (no ``hash()``
    anywhere), invariant under dtype/memory-order changes, and distinct
    under any value perturbation.
    """
    digest = hashlib.sha256()
    digest.update(CACHE_KEY_VERSION.encode("ascii"))
    digest.update(b"\x00")
    digest.update(endpoint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_options(options).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_matrix_bytes(matrix))
    return digest.hexdigest()


def _plausible_response(value: bytes) -> bool:
    """True when spilled bytes still parse as one JSON document.

    Every value the service caches is a complete JSON response body, so
    a spill file that no longer parses (truncated write, disk damage)
    is provably corrupt and must not be promoted.
    """
    try:
        json.loads(value.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return False
    return True


class ResultCache:
    """Thread-safe LRU of response bytes with optional disk spill.

    Parameters
    ----------
    max_entries : int
        In-memory LRU capacity (>= 1).
    spill_dir : path-like, optional
        When given, entries evicted from memory are persisted as
        ``<spill_dir>/<key>.json`` and read back (and re-promoted into
        memory) on the next lookup, so a bounce of the process keeps
        the long tail warm.

    Disk I/O never reaches a request.  An unwritable or uncreatable
    spill directory degrades the cache to memory-only with a one-time
    :class:`RuntimeWarning` and a
    ``repro_serve_cache_events_total{event="spill_error"}`` count; a
    corrupt or truncated spill file found on promote is deleted and
    treated as a miss (its result is simply recomputed) instead of
    being served to the client.

    Examples
    --------
    >>> cache = ResultCache(max_entries=2)
    >>> cache.put("k1", b"one"); cache.put("k2", b"two")
    >>> cache.get("k1")
    b'one'
    >>> cache.put("k3", b"three")  # evicts k2 (k1 was just touched)
    >>> cache.get("k2") is None
    True
    """

    def __init__(self, max_entries: int = 1024, spill_dir=None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.evictions = 0
        self.spill_errors = 0
        self.spill_degraded = False
        if self.spill_dir is not None:
            try:
                self.spill_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                self._degrade_spill(f"cannot create {self.spill_dir}: {exc}")

    def _degrade_spill(self, why: str) -> None:
        """Fall back to memory-only LRU; warn once, count the event."""
        self.spill_errors += 1
        _metrics.count_serve_cache("spill_error")
        if not self.spill_degraded:
            self.spill_degraded = True
            self.spill_dir = None
            warnings.warn(
                "result-cache disk spill disabled (degrading to "
                f"memory-only LRU): {why}",
                RuntimeWarning,
                stacklevel=3,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _spill_path(self, key: str) -> Path:
        # Keys are hex digests, so the filename needs no escaping.
        return self.spill_dir / f"{key}.json"

    def get(self, key: str) -> bytes | None:
        """The cached bytes for ``key``, or None.

        Memory hits refresh LRU recency; disk hits are promoted back
        into memory (possibly evicting the current LRU tail).
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits_memory += 1
                _metrics.count_serve_cache("hit-memory")
                return value
        if self.spill_dir is not None:
            path = self._spill_path(key)
            try:
                value = path.read_bytes()
            except FileNotFoundError:
                value = None  # plain miss: this key never spilled
            except OSError as exc:
                value = None
                self._degrade_spill(f"cannot read {path}: {exc}")
            if value is not None and not _plausible_response(value):
                # Corrupt / truncated spill (partial write, disk
                # damage): never serve it — drop the file and
                # recompute.  The spill path itself stays enabled.
                self.spill_errors += 1
                _metrics.count_serve_cache("spill_error")
                try:
                    path.unlink()
                except OSError:
                    pass
                value = None
            if value is not None:
                with self._lock:
                    self.hits_disk += 1
                self._store(key, value)
                _metrics.count_serve_cache("hit-disk")
                return value
        with self._lock:
            self.misses += 1
        _metrics.count_serve_cache("miss")
        return None

    def put(self, key: str, value: bytes) -> None:
        """Insert (or refresh) ``key``, evicting the LRU tail if full."""
        if not isinstance(value, bytes):
            raise TypeError(
                f"ResultCache stores response bytes, got {type(value)}"
            )
        self._store(key, value)

    def _store(self, key: str, value: bytes) -> None:
        spilled: tuple[str, bytes] | None = None
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_entries:
                old_key, old_value = self._entries.popitem(last=False)
                self.evictions += 1
                if self.spill_dir is not None:
                    spilled = (old_key, old_value)
        _metrics.count_serve_cache("store")
        spill_dir = self.spill_dir
        if spilled is not None and spill_dir is not None:
            _metrics.count_serve_cache("spill")
            path = spill_dir / f"{spilled[0]}.json"
            try:
                path.write_bytes(spilled[1])
            except OSError as exc:
                # Spill is best-effort (the result can be recomputed),
                # but a write failure means the directory is unusable:
                # degrade to memory-only instead of failing every
                # future eviction the same way.
                self._degrade_spill(f"cannot write {path}: {exc}")

    def stats(self) -> dict:
        """JSON-safe counter snapshot (hits, misses, evictions, size)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits_memory": self.hits_memory,
                "hits_disk": self.hits_disk,
                "misses": self.misses,
                "evictions": self.evictions,
                "spill_dir": str(self.spill_dir) if self.spill_dir else None,
                "spill_errors": self.spill_errors,
                "spill_degraded": self.spill_degraded,
            }
