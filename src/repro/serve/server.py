"""The asyncio characterization service behind ``repro-hc serve``.

A single-process, stdlib-only JSON-over-HTTP server that turns the
offline measure library into a standing endpoint:

* ``POST /v1/characterize`` / ``/v1/standardize`` /
  ``/v1/recommend-heuristic`` — the request formats are documented in
  :mod:`repro.serve.protocol` and ``docs/SERVING.md``;
* ``GET /metrics`` — the process metrics registry in Prometheus text
  exposition (:func:`repro.obs.render_prometheus`);
* ``GET /healthz`` — liveness plus cache/coalescer counters.

Request flow (the order is the point):

1. **content-addressed cache** — the canonical matrix + options key
   (:func:`repro.serve.cache.matrix_cache_key`) is looked up first;
   hits answer with the exact bytes of the original response and zero
   kernel work;
2. **in-flight dedup** — an identical request already being computed
   is joined, not recomputed (single-flight);
3. **micro-batching coalescer** — same-shape, same-options requests
   are stacked into one ``(N, T, M)`` batched kernel call
   (:class:`repro.serve.coalesce.Coalescer`);
4. the batch runs under the **robust pipeline** with the per-request
   quarantine/repair policy, so one corrupt matrix in a coalesced
   batch yields a structured error for *its* caller while every
   healthy cohabitant succeeds.

:class:`ServerThread` hosts the whole loop in a daemon thread for
tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import __version__
from ..obs import metrics as _metrics
from ..obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..obs.metrics import enable_metrics
from .cache import ResultCache, matrix_cache_key
from .coalesce import Coalescer, ServeFault
from .protocol import (
    ProtocolError,
    ServeRequest,
    decode_json,
    error_body,
    parse_request,
    result_body,
)

__all__ = ["ServeConfig", "CharacterizationServer", "ServerThread"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}

#: Protects the event loop from unbounded request bodies (16 MiB is a
#: ~1448x1448 float64 matrix — far beyond any sane ETC environment).
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs of the characterization service."""

    host: str = "127.0.0.1"
    port: int = 8787
    linger_s: float = 0.002
    max_batch: int = 64
    cache_entries: int = 1024
    cache_dir: str | None = None
    enable_metrics: bool = True


@dataclass
class _Inflight:
    """Single-flight bookkeeping: key → the future of its body bytes."""

    future: asyncio.Future
    waiters: int = 0


class CharacterizationServer:
    """The service core: routing, caching, coalescing, robust kernels.

    Transport-agnostic — :meth:`dispatch` maps ``(method, path, body)``
    to ``(status, content_type, body)``, and the socket layer
    (:meth:`start` / :class:`ServerThread`) is a thin asyncio stream
    wrapper around it, so tests can drive the full pipeline without
    opening ports.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.cache_dir,
        )
        self._inflight: dict[str, _Inflight] = {}
        self.coalescers = {
            "characterize": Coalescer(
                self._run_characterize_batch,
                endpoint="characterize",
                linger_s=self.config.linger_s,
                max_batch=self.config.max_batch,
            ),
            "standardize": Coalescer(
                self._run_standardize_batch,
                endpoint="standardize",
                linger_s=self.config.linger_s,
                max_batch=self.config.max_batch,
            ),
        }
        self.started_at = time.time()
        self.requests_served = 0
        self._server: asyncio.base_events.Server | None = None
        if self.config.enable_metrics:
            enable_metrics()

    # -- batch runners (executor threads) ------------------------------

    def _run_characterize_batch(self, options: dict, matrices: list) -> list:
        """One batched characterize kernel call; per-slice payloads."""
        from ..batch import characterize_ensemble

        stack = np.stack(matrices)
        result = characterize_ensemble(
            stack,
            tol=options["tol"],
            tma_fallback=options.get("tma_fallback", "limit"),
            policy=options.get("policy", "quarantine"),
            backend=options.get("backend"),
        )
        out: list = []
        for index in range(len(matrices)):
            payload = result.member_payload(index)
            fault = payload.get("fault")
            if "mph" not in payload:  # quarantined: no usable row
                out.append(
                    ServeFault(fault["category"], fault["detail"])
                )
                continue
            payload["n_tasks"] = int(stack.shape[1])
            payload["n_machines"] = int(stack.shape[2])
            out.append(payload)
        return out

    def _run_standardize_batch(self, options: dict, matrices: list) -> list:
        """One batched standardize kernel call; per-slice payloads."""
        from ..batch.sinkhorn import standardize_batched

        stack = np.stack(matrices)
        result = standardize_batched(
            stack,
            tol=options["tol"],
            max_iterations=options.get("max_iterations", 100_000),
            policy=options.get("policy", "quarantine"),
            backend=options.get("backend"),
        )
        report = getattr(result, "report", None)
        out: list = []
        for index in range(len(matrices)):
            fault = None
            if report is not None:
                try:
                    fault = report.fault(index)
                except KeyError:
                    fault = None
            slice_matrix = result.matrix[index]
            if (
                fault is not None
                and not fault.repaired
                and not np.isfinite(slice_matrix).all()
            ):
                # Hard fault: no usable iterate at all.
                out.append(ServeFault(fault.category, fault.detail))
                continue
            payload = {
                "matrix": slice_matrix,
                "iterations": int(result.iterations[index]),
                "converged": bool(result.converged[index]),
                "residual": float(result.residual[index]),
                "row_target": float(result.row_target),
                "col_target": float(result.col_target),
            }
            if fault is not None:
                payload["fault"] = fault.to_payload()
            out.append(payload)
        return out

    # -- request handling ----------------------------------------------

    async def _compute(self, request: ServeRequest) -> tuple[bytes, str]:
        """Body bytes for one request, via the coalescer; no caching."""
        endpoint = request.endpoint
        if endpoint == "recommend-heuristic":
            # Rides the characterize coalescer, then applies the rule.
            from ..scheduling.selection import recommend_from_measures

            inner = ServeRequest(
                endpoint="characterize",
                matrix=request.matrix,
                options={**request.options, "tma_fallback": "limit"},
            )
            outcome = await self.coalescers["characterize"].submit(inner)
            measures = outcome.payload
            name, reason = recommend_from_measures(
                measures["mph"], measures["tdh"], measures["tma"]
            )
            result = {
                "heuristic": name,
                "reason": reason,
                "measures": {
                    "mph": measures["mph"],
                    "tdh": measures["tdh"],
                    "tma": measures["tma"],
                },
            }
            source = "batched" if outcome.batch_size > 1 else "cold"
            return result_body(endpoint, result), source
        outcome = await self.coalescers[endpoint].submit(request)
        source = "batched" if outcome.batch_size > 1 else "cold"
        return result_body(endpoint, outcome.payload), source

    async def handle_request(
        self, endpoint: str, payload
    ) -> tuple[int, bytes, str]:
        """Full pipeline for one parsed JSON request document.

        Returns ``(status, body_bytes, source)``; ``source`` is the
        serving-path label fed to the latency histogram.
        """
        request = parse_request(endpoint, payload)
        key = matrix_cache_key(
            request.matrix, endpoint=endpoint, options=request.options
        )
        cached = self.cache.get(key)
        if cached is not None:
            return 200, cached, "cache-memory"

        inflight = self._inflight.get(key)
        if inflight is not None:
            inflight.waiters += 1
            body = await asyncio.shield(inflight.future)
            return 200, body, "inflight"

        entry = _Inflight(asyncio.get_running_loop().create_future())
        self._inflight[key] = entry
        try:
            body, source = await self._compute(request)
        except BaseException as exc:
            # Faults are not cached (a retry with fixed data must
            # recompute); waiters get the same exception re-raised.
            if not entry.future.done():
                entry.future.set_exception(exc)
                # Consume the exception so the loop never logs it as
                # "never retrieved" when no waiter joined.
                entry.future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        self.cache.put(key, body)
        entry.future.set_result(body)
        return 200, body, source

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        """Route one HTTP exchange; returns (status, content-type, body)."""
        t0 = time.perf_counter()
        path = path.split("?", 1)[0]
        endpoint = None
        if path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
        try:
            if method == "GET" and path in ("/metrics", "/"):
                return 200, PROMETHEUS_CONTENT_TYPE, render_prometheus(
                    _metrics.get_registry()
                ).encode("utf-8")
            if method == "GET" and path == "/healthz":
                return 200, "application/json", result_body(
                    "healthz",
                    {
                        "status": "ok",
                        "version": __version__,
                        "uptime_s": time.time() - self.started_at,
                        "requests_served": self.requests_served,
                        "cache": self.cache.stats(),
                        "coalescer": {
                            name: {
                                "batches_flushed": c.batches_flushed,
                                "requests_coalesced": c.requests_coalesced,
                            }
                            for name, c in self.coalescers.items()
                        },
                    },
                )
            if endpoint is None:
                return 404, "application/json", error_body(
                    None, "not-found", f"unknown path {path!r}"
                )
            if method != "POST":
                return 405, "application/json", error_body(
                    endpoint, "bad-request",
                    f"{endpoint} requires POST, got {method}",
                )
            payload = decode_json(body)
            status, response, source = await self.handle_request(
                endpoint, payload
            )
            self.requests_served += 1
            _metrics.observe_serve_request(
                endpoint,
                status=status,
                source=source,
                wall_s=time.perf_counter() - t0,
            )
            return status, "application/json", response
        except ProtocolError as exc:
            status = exc.status
            category = "not-found" if status == 404 else "bad-request"
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=status,
                source="error",
                wall_s=time.perf_counter() - t0,
            )
            return status, "application/json", error_body(
                endpoint, category, str(exc)
            )
        except ServeFault as fault:
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=fault.status,
                source="error",
                wall_s=time.perf_counter() - t0,
            )
            _metrics.count_serve_quarantined(
                endpoint or "unknown", fault.category
            )
            return fault.status, "application/json", error_body(
                endpoint, fault.category, str(fault)
            )
        except Exception as exc:  # pragma: no cover - defensive
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=500,
                source="error",
                wall_s=time.perf_counter() - t0,
            )
            return 500, "application/json", error_body(
                endpoint, "internal", f"{type(exc).__name__}: {exc}"
            )

    # -- the socket layer ----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = 0
            if content_length > MAX_BODY_BYTES:
                status, ctype, body = 413, "application/json", error_body(
                    None, "bad-request",
                    f"body of {content_length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                )
            else:
                body_in = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
                status, ctype, body = await self.dispatch(
                    method, target, body_in
                )
            reason = _REASONS.get(status, "Unknown")
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # pragma: no cover - client went away mid-exchange
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def start(self) -> asyncio.base_events.Server:
        """Bind and start accepting connections; returns the server.

        Raises :class:`OSError` (``EADDRINUSE``) when the port is
        taken — the CLI turns that into a one-line actionable error.
        """
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """``start()`` (if needed) then serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        for coalescer in self.coalescers.values():
            await coalescer.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


@dataclass
class ServerThread:
    """A characterization server on a daemon thread (tests, benches).

    Examples
    --------
    >>> handle = ServerThread(ServeConfig(port=0))  # ephemeral port
    >>> host, port = handle.start()
    >>> isinstance(port, int) and port > 0
    True
    >>> handle.stop()
    """

    config: ServeConfig = field(default_factory=ServeConfig)
    server: CharacterizationServer | None = None
    _loop: asyncio.AbstractEventLoop | None = None
    _thread: threading.Thread | None = None

    def start(self, timeout_s: float = 10.0) -> tuple[str, int]:
        """Start the loop + server; returns the bound (host, port)."""
        ready = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = CharacterizationServer(self.config)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # bind failure -> caller
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout_s):  # pragma: no cover - defensive
            raise RuntimeError("server thread did not start in time")
        if failure:
            raise failure[0]
        assert self.server is not None
        return self.server.address

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self._loop = None
        self._thread = None
