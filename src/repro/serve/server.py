"""The asyncio characterization service behind ``repro-hc serve``.

A single-process, stdlib-only JSON-over-HTTP server that turns the
offline measure library into a standing endpoint:

* ``POST /v1/characterize`` / ``/v1/standardize`` /
  ``/v1/recommend-heuristic`` — the request formats are documented in
  :mod:`repro.serve.protocol` and ``docs/SERVING.md``;
* ``GET /metrics`` — the process metrics registry in Prometheus text
  exposition (:func:`repro.obs.render_prometheus`);
* ``GET /healthz`` — the combined health report (``ok`` / ``degraded``
  / ``draining``), with ``/healthz/live`` and ``/healthz/ready`` as
  the split liveness / readiness probes.

Request flow (the order is the point):

1. **content-addressed cache** — the canonical matrix + options key
   (:func:`repro.serve.cache.matrix_cache_key`) is looked up first;
   hits answer with the exact bytes of the original response and zero
   kernel work;
2. **in-flight dedup** — an identical request already being computed
   is joined, not recomputed (single-flight);
3. **admission control** — compute work passes a per-endpoint
   concurrency gate with a bounded pending queue
   (:class:`repro.serve.resilience.AdmissionController`); excess load
   is shed with a structured ``503`` + ``Retry-After`` instead of
   queued unboundedly, and an AIMD estimator adapts the limit to the
   capacity the host actually exhibits;
4. **micro-batching coalescer** — same-shape, same-options requests
   are stacked into one ``(N, T, M)`` batched kernel call
   (:class:`repro.serve.coalesce.Coalescer`), under the tightest
   surviving request deadline;
5. the batch runs under the **robust pipeline** with the per-request
   quarantine/repair policy, so one corrupt matrix in a coalesced
   batch yields a structured error for *its* caller while every
   healthy cohabitant succeeds.

Shutdown is graceful: SIGTERM/SIGINT (wired by the CLI) triggers
:meth:`CharacterizationServer.shutdown` — stop accepting, flush the
coalescer, finish every in-flight request under the drain timeout, and
exit 0 with zero dropped responses.

:class:`ServerThread` hosts the whole loop in a daemon thread for
tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import __version__
from ..obs import metrics as _metrics
from ..obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..obs.metrics import enable_metrics, register_serve_resilience_metrics
from ..obs.sinks import JsonlSink, RotatingJsonlSink
from ..obs.trace_context import RequestTrace, Tracer
from ..robust.budget import Budget, Deadline
from .cache import ResultCache, matrix_cache_key
from .coalesce import Coalescer, ServeFault
from .protocol import (
    ProtocolError,
    ServeRequest,
    decode_json,
    encode_json,
    error_body,
    parse_request,
    result_body,
)
from .resilience import (
    AdmissionController,
    CapacityEstimator,
    DeadlineExceeded,
    DrainState,
    ShedError,
)

__all__ = ["ServeConfig", "CharacterizationServer", "ServerThread"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Protects the event loop from unbounded request bodies (16 MiB is a
#: ~1448x1448 float64 matrix — far beyond any sane ETC environment).
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs of the characterization service.

    The resilience knobs (see :mod:`repro.serve.resilience` and
    ``docs/SERVING.md``):

    * ``max_inflight`` / ``queue_depth`` — per-endpoint admission
      ceiling and bounded pending queue; overflow is shed with a
      structured ``503`` + ``Retry-After``;
    * ``adaptive`` — when True (default) an AIMD estimator per
      endpoint tightens the admission limit while the observed request
      p99 breaches ``target_p99_ms`` and relaxes it while the server
      keeps up;
    * ``default_deadline_ms`` — server-side deadline applied to
      requests that do not send their own ``deadline_ms``;
    * ``drain_timeout_s`` — how long a graceful shutdown waits for
      in-flight requests before giving up on them.

    The tracing knobs (see ``docs/OBSERVABILITY.md``):

    * ``trace_path`` — JSONL span-sink file; when set, every request
      emits a ``serve.request`` root span (plus cache / kernel child
      spans) queryable with ``repro-hc trace query``.  Trace *ids* are
      minted regardless — every response carries ``X-Repro-Trace-Id`` —
      only span emission is gated on this path;
    * ``slow_log_path`` / ``slow_threshold_ms`` — rotating JSONL log of
      requests slower than the threshold, each record carrying the
      trace id and the full stage breakdown;
    * ``slow_log_max_bytes`` / ``slow_log_backups`` — rotation policy
      of the slow-request log.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    linger_s: float = 0.002
    max_batch: int = 64
    cache_entries: int = 1024
    cache_dir: str | None = None
    enable_metrics: bool = True
    max_inflight: int = 64
    queue_depth: int = 256
    adaptive: bool = True
    target_p99_ms: float = 500.0
    min_inflight: int = 2
    default_deadline_ms: float | None = None
    drain_timeout_s: float = 10.0
    trace_path: str | None = None
    slow_log_path: str | None = None
    slow_threshold_ms: float = 500.0
    slow_log_max_bytes: int = 1_000_000
    slow_log_backups: int = 3


@dataclass
class _Inflight:
    """Single-flight bookkeeping: key → the future of its body bytes."""

    future: asyncio.Future
    waiters: int = 0


class CharacterizationServer:
    """The service core: routing, caching, coalescing, robust kernels.

    Transport-agnostic — :meth:`dispatch` maps ``(method, path, body)``
    to ``(status, content_type, body)``, and the socket layer
    (:meth:`start` / :class:`ServerThread`) is a thin asyncio stream
    wrapper around it, so tests can drive the full pipeline without
    opening ports.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.cache_dir,
        )
        self.tracer: Tracer | None = None
        if self.config.trace_path is not None:
            self.tracer = Tracer(
                JsonlSink(self.config.trace_path), process="repro-serve"
            )
        self.slow_log: RotatingJsonlSink | None = None
        if self.config.slow_log_path is not None:
            self.slow_log = RotatingJsonlSink(
                self.config.slow_log_path,
                max_bytes=self.config.slow_log_max_bytes,
                backups=self.config.slow_log_backups,
            )
        self._inflight: dict[str, _Inflight] = {}
        self.coalescers = {
            "characterize": Coalescer(
                self._run_characterize_batch,
                endpoint="characterize",
                linger_s=self.config.linger_s,
                max_batch=self.config.max_batch,
                tracer=self.tracer,
            ),
            "standardize": Coalescer(
                self._run_standardize_batch,
                endpoint="standardize",
                linger_s=self.config.linger_s,
                max_batch=self.config.max_batch,
                tracer=self.tracer,
            ),
        }
        estimators = None
        if self.config.adaptive:
            estimators = {
                endpoint: CapacityEstimator(
                    base_limit=self.config.max_inflight,
                    min_limit=min(
                        self.config.min_inflight, self.config.max_inflight
                    ),
                    max_limit=self.config.max_inflight,
                    target_p99_s=self.config.target_p99_ms / 1e3,
                )
                for endpoint in (
                    "characterize", "standardize", "recommend-heuristic"
                )
            }
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            estimators=estimators,
        )
        self.drain_state = DrainState()
        self.started_at = self.drain_state.started_at
        self.requests_served = 0
        self._active_exchanges = 0
        self._server: asyncio.base_events.Server | None = None
        if self.config.enable_metrics:
            enable_metrics()
            register_serve_resilience_metrics()

    # -- batch runners (executor threads) ------------------------------

    @staticmethod
    def _batch_budget(options: dict) -> Budget | None:
        """The kernel budget for one batch: tightest member deadline.

        The coalescer injects ``deadline_s`` (the tightest surviving
        request deadline) into the flush options; the kernel runs under
        it so a batch never outlives every caller that is still
        waiting on it.
        """
        deadline_s = options.pop("deadline_s", None)
        if deadline_s is None:
            return None
        return Budget(deadline_s=max(0.001, float(deadline_s)))

    def _run_characterize_batch(self, options: dict, matrices: list) -> list:
        """One batched characterize kernel call; per-slice payloads."""
        from ..batch import characterize_ensemble

        budget = self._batch_budget(options)
        stack = np.stack(matrices)
        result = characterize_ensemble(
            stack,
            tol=options["tol"],
            tma_fallback=options.get("tma_fallback", "limit"),
            policy=options.get("policy", "quarantine"),
            backend=options.get("backend"),
            budget=budget,
        )
        out: list = []
        for index in range(len(matrices)):
            payload = result.member_payload(index)
            fault = payload.get("fault")
            if "mph" not in payload:  # quarantined: no usable row
                out.append(
                    ServeFault(fault["category"], fault["detail"])
                )
                continue
            payload["n_tasks"] = int(stack.shape[1])
            payload["n_machines"] = int(stack.shape[2])
            out.append(payload)
        return out

    def _run_standardize_batch(self, options: dict, matrices: list) -> list:
        """One batched standardize kernel call; per-slice payloads."""
        from ..batch.sinkhorn import standardize_batched

        budget = self._batch_budget(options)
        stack = np.stack(matrices)
        result = standardize_batched(
            stack,
            tol=options["tol"],
            max_iterations=options.get("max_iterations", 100_000),
            policy=options.get("policy", "quarantine"),
            backend=options.get("backend"),
            budget=budget,
        )
        report = getattr(result, "report", None)
        out: list = []
        for index in range(len(matrices)):
            fault = None
            if report is not None:
                try:
                    fault = report.fault(index)
                except KeyError:
                    fault = None
            slice_matrix = result.matrix[index]
            if (
                fault is not None
                and not fault.repaired
                and not np.isfinite(slice_matrix).all()
            ):
                # Hard fault: no usable iterate at all.
                out.append(ServeFault(fault.category, fault.detail))
                continue
            payload = {
                "matrix": slice_matrix,
                "iterations": int(result.iterations[index]),
                "converged": bool(result.converged[index]),
                "residual": float(result.residual[index]),
                "row_target": float(result.row_target),
                "col_target": float(result.col_target),
            }
            if fault is not None:
                payload["fault"] = fault.to_payload()
            out.append(payload)
        return out

    # -- request handling ----------------------------------------------

    async def _compute(
        self,
        request: ServeRequest,
        deadline: Deadline | None = None,
        trace: RequestTrace | None = None,
    ) -> tuple[bytes, str]:
        """Body bytes for one request, via the coalescer; no caching."""
        endpoint = request.endpoint
        context = trace.context if trace is not None else None
        if endpoint == "recommend-heuristic":
            # Rides the characterize coalescer, then applies the rule.
            from ..scheduling.selection import recommend_from_measures

            inner = ServeRequest(
                endpoint="characterize",
                matrix=request.matrix,
                options={**request.options, "tma_fallback": "limit"},
            )
            outcome = await self.coalescers["characterize"].submit(
                inner, deadline, context
            )
            if trace is not None:
                trace.add("coalesce_linger_s", outcome.linger_s)
                trace.add("kernel_s", outcome.kernel_s)
            measures = outcome.payload
            name, reason = recommend_from_measures(
                measures["mph"], measures["tdh"], measures["tma"]
            )
            result = {
                "heuristic": name,
                "reason": reason,
                "measures": {
                    "mph": measures["mph"],
                    "tdh": measures["tdh"],
                    "tma": measures["tma"],
                },
            }
            source = "batched" if outcome.batch_size > 1 else "cold"
            render_t0 = time.perf_counter()
            body = result_body(endpoint, result)
            if trace is not None:
                trace.add("render_s", time.perf_counter() - render_t0)
            return body, source
        outcome = await self.coalescers[endpoint].submit(
            request, deadline, context
        )
        if trace is not None:
            trace.add("coalesce_linger_s", outcome.linger_s)
            trace.add("kernel_s", outcome.kernel_s)
        source = "batched" if outcome.batch_size > 1 else "cold"
        render_t0 = time.perf_counter()
        body = result_body(endpoint, outcome.payload)
        if trace is not None:
            trace.add("render_s", time.perf_counter() - render_t0)
        return body, source

    def _request_deadline(
        self, request: ServeRequest, elapsed_s: float = 0.0
    ) -> Deadline | None:
        """The request's started deadline clock, or None (unbounded).

        The clock starts at *arrival* (the top of :meth:`dispatch`),
        so ``elapsed_s`` — time already spent reading and parsing the
        request — is subtracted from the budget before it starts.
        """
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        if deadline_ms is None:
            return None
        return Deadline(max(0.0, deadline_ms / 1e3 - elapsed_s))

    def _emit_cache_span(
        self, trace: RequestTrace | None, wall_s: float, outcome: str
    ) -> None:
        """A ``serve.cache`` child span, when tracing is on."""
        if self.tracer is None or trace is None:
            return
        self.tracer.emit_span(
            "serve.cache",
            trace.context.child(),
            wall_s=wall_s,
            meta={"outcome": outcome},
        )

    async def handle_request(
        self,
        endpoint: str,
        payload,
        elapsed_s: float = 0.0,
        trace: RequestTrace | None = None,
    ) -> tuple[int, bytes, str]:
        """Full pipeline for one parsed JSON request document.

        Returns ``(status, body_bytes, source)``; ``source`` is the
        serving-path label fed to the latency histogram.  Raises
        :class:`~repro.serve.resilience.ShedError` when the request is
        rejected by admission control or its deadline.
        """
        request = parse_request(endpoint, payload)
        deadline = self._request_deadline(request, elapsed_s)
        if deadline is not None and deadline.expired():
            _metrics.count_serve_deadline_exceeded(endpoint, "entry")
            raise DeadlineExceeded(
                "request deadline expired before any work was scheduled"
            )
        key = matrix_cache_key(
            request.matrix, endpoint=endpoint, options=request.options
        )
        # Cache hits and singleflight joins bypass admission control:
        # they cost no kernel work, and shedding them under load would
        # throw away exactly the requests that are free to serve.
        cache_t0 = time.perf_counter()
        cached = self.cache.get(key)
        cache_s = time.perf_counter() - cache_t0
        if trace is not None:
            trace.add("cache_s", cache_s)
        if cached is not None:
            self._emit_cache_span(trace, cache_s, "hit")
            return 200, cached, "cache-memory"
        self._emit_cache_span(trace, cache_s, "miss")

        inflight = self._inflight.get(key)
        if inflight is not None:
            inflight.waiters += 1
            body = await asyncio.shield(inflight.future)
            return 200, body, "inflight"

        entry = _Inflight(asyncio.get_running_loop().create_future())
        self._inflight[key] = entry
        admitted = False
        try:
            await self.admission.admit(endpoint, deadline, trace)
            admitted = True
            body, source = await self._compute(request, deadline, trace)
        except BaseException as exc:
            # Faults are not cached (a retry with fixed data must
            # recompute); waiters get the same exception re-raised.
            if not entry.future.done():
                entry.future.set_exception(exc)
                # Consume the exception so the loop never logs it as
                # "never retrieved" when no waiter joined.
                entry.future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
            if admitted:
                self.admission.release(endpoint)
        put_t0 = time.perf_counter()
        self.cache.put(key, body)
        if trace is not None:
            trace.add("cache_s", time.perf_counter() - put_t0)
        entry.future.set_result(body)
        return 200, body, source

    def health_payload(self) -> dict:
        """The ``/healthz`` body: status, probes, pipeline counters."""
        degraded = self.admission.degraded or self.cache.spill_degraded
        return {
            "status": self.drain_state.status(degraded=degraded),
            "live": True,
            "ready": self.drain_state.ready,
            "version": __version__,
            "uptime_s": self.drain_state.uptime_s(),
            "requests_served": self.requests_served,
            "active_exchanges": self._active_exchanges,
            "admission": self.admission.stats(),
            "cache": self.cache.stats(),
            "coalescer": {
                name: {
                    "batches_flushed": c.batches_flushed,
                    "requests_coalesced": c.requests_coalesced,
                    "deadline_shed": c.deadline_shed,
                    "pending": c.pending,
                }
                for name, c in self.coalescers.items()
            },
        }

    def _healthz(self, path: str) -> tuple[int, str, bytes]:
        """The liveness / readiness probe split.

        * ``/healthz`` — the combined report: 200 while the process is
          up, with ``status`` ok / degraded / draining in the body;
        * ``/healthz/live`` — liveness only: 200 until the process
          exits (an orchestrator must not kill a draining server);
        * ``/healthz/ready`` — readiness: 503 once draining starts, so
          balancers stop routing here while in-flight work finishes.
        """
        payload = self.health_payload()
        status = 200
        if path == "/healthz/ready" and not payload["ready"]:
            status = 503
        return status, "application/json", result_body("healthz", payload)

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        """Route one exchange; returns (status, content-type, body).

        Compatibility wrapper around :meth:`exchange` for callers that
        do not need response headers.
        """
        status, ctype, payload, _ = await self.exchange(method, path, body)
        return status, ctype, payload

    def _finish_request(
        self,
        rtrace: RequestTrace,
        endpoint: str | None,
        *,
        status: int,
        source: str,
        wall_s: float,
        error: str | None = None,
        need_timings: bool = False,
    ) -> dict[str, float] | None:
        """Root span + slow-log emission for one ``/v1`` exchange.

        Returns the stage breakdown (``other_s`` absorbs unattributed
        time, so the stages sum to ``wall_s`` by construction) — or
        None when nothing consumes it: the breakdown is only built when
        a span is emitted, the request is slow enough to log, or the
        caller asked for it (``debug_timings``), keeping the fully
        disabled path free of the dict work.
        """
        slow = (
            self.slow_log is not None
            and wall_s * 1e3 >= self.config.slow_threshold_ms
        )
        if self.tracer is None and not slow and not need_timings:
            return None
        timings = rtrace.timings(wall_s)
        if self.tracer is not None:
            self.tracer.emit_span(
                "serve.request",
                rtrace.context,
                wall_s=wall_s,
                start=rtrace.started_at,
                meta={
                    "endpoint": endpoint or "unknown",
                    "status": status,
                    "source": source,
                    "timings": timings,
                },
                error=error,
            )
        if slow:
            self.slow_log.emit(
                {
                    "type": "slow_request",
                    "ts": rtrace.started_at,
                    "trace_id": rtrace.context.trace_id,
                    "endpoint": endpoint or "unknown",
                    "status": status,
                    "source": source,
                    "total_s": wall_s,
                    "timings": timings,
                }
            )
        return timings

    @staticmethod
    def _inject_debug(
        response: bytes, rtrace: RequestTrace, timings: dict, wall_s: float
    ) -> bytes:
        """Attach the ``debug`` section to a success body.

        Happens *after* cache/coalescer handling, on a decoded copy, so
        the canonical cached bytes stay bit-identical across requests
        that do and do not ask for timings.
        """
        document = decode_json(response)
        document["debug"] = {
            "trace_id": rtrace.context.trace_id,
            "total_s": wall_s,
            "timings": timings,
        }
        return encode_json(document)

    async def exchange(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, str, bytes, dict[str, str]]:
        """Route one HTTP exchange; returns (status, ctype, body, headers).

        ``headers`` (optional) carries the lower-cased request headers;
        a valid W3C ``traceparent`` among them is adopted as the
        request's remote parent.  The returned header dict carries
        ``X-Repro-Trace-Id`` on every ``/v1`` response and
        ``Retry-After`` on every shed (503) response.

        ``GET /metrics`` and ``GET /healthz*`` are *scrape* traffic:
        they are observed in their own metric families
        (``repro_serve_scrapes_total`` / ``repro_serve_scrape_seconds``)
        and never land in the request-latency histogram the adaptive
        admission estimator reads.
        """
        t0 = time.perf_counter()
        path = path.split("?", 1)[0]
        if method == "GET" and path in ("/metrics", "/"):
            payload = render_prometheus(
                _metrics.get_registry()
            ).encode("utf-8")
            _metrics.observe_serve_scrape(
                "metrics", status=200, wall_s=time.perf_counter() - t0
            )
            return 200, PROMETHEUS_CONTENT_TYPE, payload, {}
        if method == "GET" and path in (
            "/healthz", "/healthz/live", "/healthz/ready"
        ):
            status, ctype, payload = self._healthz(path)
            _metrics.observe_serve_scrape(
                "healthz", status=status, wall_s=time.perf_counter() - t0
            )
            return status, ctype, payload, {}
        endpoint = None
        if path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
        rtrace = RequestTrace.begin((headers or {}).get("traceparent"))
        trace_id = rtrace.context.trace_id
        out_headers = {"X-Repro-Trace-Id": trace_id}
        try:
            if endpoint is None:
                return 404, "application/json", error_body(
                    None, "not-found", f"unknown path {path!r}"
                ), out_headers
            if method != "POST":
                return 405, "application/json", error_body(
                    endpoint, "bad-request",
                    f"{endpoint} requires POST, got {method}",
                ), out_headers
            if self.drain_state.draining:
                _metrics.count_serve_shed(endpoint, "draining")
                raise ShedError(
                    "draining",
                    "the server is draining for shutdown and accepts "
                    "no new work",
                    retry_after_s=max(1.0, self.config.drain_timeout_s),
                )
            payload = decode_json(body)
            status, response, source = await self.handle_request(
                endpoint,
                payload,
                elapsed_s=time.perf_counter() - t0,
                trace=rtrace,
            )
            self.requests_served += 1
            wall_s = time.perf_counter() - t0
            _metrics.observe_serve_request(
                endpoint,
                status=status,
                source=source,
                wall_s=wall_s,
                trace_id=trace_id,
            )
            if source in ("cold", "batched", "inflight"):
                # Feed the AIMD estimator from the compute path only:
                # memoized answers say nothing about kernel capacity.
                self.admission.observe(endpoint, wall_s)
            want_debug = (
                status == 200
                and isinstance(payload, dict)
                and payload.get("debug_timings") is True
            )
            timings = self._finish_request(
                rtrace, endpoint, status=status, source=source,
                wall_s=wall_s, need_timings=want_debug,
            )
            if want_debug:
                response = self._inject_debug(
                    response, rtrace, timings, wall_s
                )
            return status, "application/json", response, out_headers
        except ProtocolError as exc:
            status = exc.status
            category = "not-found" if status == 404 else "bad-request"
            wall_s = time.perf_counter() - t0
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=status,
                source="error",
                wall_s=wall_s,
                trace_id=trace_id,
            )
            self._finish_request(
                rtrace, endpoint, status=status, source="error",
                wall_s=wall_s, error=f"ProtocolError: {exc}",
            )
            return status, "application/json", error_body(
                endpoint, category, str(exc)
            ), out_headers
        except ShedError as shed:
            wall_s = time.perf_counter() - t0
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=shed.status,
                source="shed",
                wall_s=wall_s,
                trace_id=trace_id,
            )
            self._finish_request(
                rtrace, endpoint, status=shed.status, source="shed",
                wall_s=wall_s, error=f"ShedError: {shed}",
            )
            return shed.status, "application/json", error_body(
                endpoint,
                shed.category,
                str(shed),
                retry_after_s=shed.retry_after_s,
            ), {**out_headers, "Retry-After": shed.retry_after_header}
        except ServeFault as fault:
            wall_s = time.perf_counter() - t0
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=fault.status,
                source="error",
                wall_s=wall_s,
                trace_id=trace_id,
            )
            _metrics.count_serve_quarantined(
                endpoint or "unknown", fault.category
            )
            self._finish_request(
                rtrace, endpoint, status=fault.status, source="error",
                wall_s=wall_s, error=f"ServeFault: {fault}",
            )
            return fault.status, "application/json", error_body(
                endpoint, fault.category, str(fault)
            ), out_headers
        except Exception as exc:  # pragma: no cover - defensive
            wall_s = time.perf_counter() - t0
            _metrics.observe_serve_request(
                endpoint or "unknown",
                status=500,
                source="error",
                wall_s=wall_s,
                trace_id=trace_id,
            )
            self._finish_request(
                rtrace, endpoint, status=500, source="error",
                wall_s=wall_s, error=f"{type(exc).__name__}: {exc}",
            )
            return 500, "application/json", error_body(
                endpoint, "internal", f"{type(exc).__name__}: {exc}"
            ), out_headers

    # -- the socket layer ----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            content_length = 0
            request_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                request_headers[name.strip().lower()] = value.strip()
            try:
                content_length = int(
                    request_headers.get("content-length", "0")
                )
            except ValueError:
                content_length = 0
            headers: dict[str, str] = {}
            if content_length > MAX_BODY_BYTES:
                status, ctype, body = 413, "application/json", error_body(
                    None, "bad-request",
                    f"body of {content_length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                )
            else:
                body_in = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
                self._active_exchanges += 1
                try:
                    status, ctype, body, headers = await self.exchange(
                        method, target, body_in, request_headers
                    )
                finally:
                    self._active_exchanges -= 1
            reason = _REASONS.get(status, "Unknown")
            extra = "".join(
                f"{name}: {value}\r\n" for name, value in headers.items()
            )
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"{extra}"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):  # pragma: no cover - client went away mid-exchange
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def start(self) -> asyncio.base_events.Server:
        """Bind and start accepting connections; returns the server.

        Raises :class:`OSError` (``EADDRINUSE``) when the port is
        taken — the CLI turns that into a one-line actionable error.
        """
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """``start()`` (if needed) then serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        for coalescer in self.coalescers.values():
            await coalescer.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.tracer is not None:
            self.tracer.close()
        if self.slow_log is not None:
            self.slow_log.close()

    async def shutdown(self, drain_timeout_s: float | None = None) -> bool:
        """Graceful drain: finish in-flight work, then close the socket.

        The sequence (see ``docs/SERVING.md``):

        1. flip :class:`~repro.serve.resilience.DrainState` — new POSTs
           are shed with ``503 draining`` and ``/healthz/ready`` goes
           red, while ``/healthz/live`` stays green;
        2. stop accepting new connections (close the listening socket);
        3. flush every lingering coalescer group and wait for in-flight
           exchanges to finish, up to ``drain_timeout_s``.

        Returns True when the drain completed cleanly (no exchange was
        abandoned), False on timeout.  Idempotent: a second call just
        waits alongside the first.
        """
        if drain_timeout_s is None:
            drain_timeout_s = self.config.drain_timeout_s
        self.drain_state.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for coalescer in self.coalescers.values():
            await coalescer.drain()
        _metrics.count_serve_drain("flushed")
        waited = 0.0
        while self._active_exchanges > 0 and waited < drain_timeout_s:
            await asyncio.sleep(0.01)
            waited += 0.01
        clean = self._active_exchanges == 0
        _metrics.count_serve_drain("completed" if clean else "timeout")
        return clean


@dataclass
class ServerThread:
    """A characterization server on a daemon thread (tests, benches).

    Examples
    --------
    >>> handle = ServerThread(ServeConfig(port=0))  # ephemeral port
    >>> host, port = handle.start()
    >>> isinstance(port, int) and port > 0
    True
    >>> handle.stop()
    """

    config: ServeConfig = field(default_factory=ServeConfig)
    server: CharacterizationServer | None = None
    _loop: asyncio.AbstractEventLoop | None = None
    _thread: threading.Thread | None = None

    def start(self, timeout_s: float = 10.0) -> tuple[str, int]:
        """Start the loop + server; returns the bound (host, port)."""
        ready = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = CharacterizationServer(self.config)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # bind failure -> caller
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout_s):  # pragma: no cover - defensive
            raise RuntimeError("server thread did not start in time")
        if failure:
            raise failure[0]
        assert self.server is not None
        return self.server.address

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self._loop = None
        self._thread = None
