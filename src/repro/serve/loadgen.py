"""Seedable, replayable traffic for the characterization service.

Three pieces:

* :func:`generate_trace` — a deterministic request trace shaped like
  the service's real workload: a pool of base environments hit with
  exact resubmissions (cache-hit material), small multiplicative
  perturbations (what-if neighbours that coalesce but never cache-hit)
  and fresh matrices, across the three endpoints.  An optional
  ``faults=`` spec (``"nan=2,zero-row=1"``, the ``--inject-faults``
  format) corrupts a seeded subset of requests through
  :class:`repro.robust.FaultPlan`, turning any replay into a chaos
  drill — only data-fault kinds are meaningful here (``stall`` targets
  workers, not matrices, and passes through unchanged).
* :func:`save_trace` / :func:`load_trace` — JSONL persistence with a
  schema header, so traces can be committed and replayed byte-for-byte
  in CI.
* :func:`replay_trace` — an asyncio client that fires the trace at a
  running server (``time_scale=0`` collapses every arrival into one
  burst — maximal coalescing pressure) and returns a
  :class:`ReplayReport` with per-request latencies and p50/p99.

:func:`latency_study` drives the three canonical serving paths (cold,
coalesced, cache-hit) and reports per-path percentiles; it is the
engine of the ``serve_latency`` bench case.

**Overload drills.**  :func:`estimate_capacity` measures the server's
sustainable throughput with a closed-loop concurrent burst, and
:func:`overload_drill` then runs an *open-loop* drill: Poisson
arrivals at a chosen multiple of that capacity, fired regardless of
how fast the server answers (open-loop is the honest overload model —
a closed-loop client self-throttles and can never overwhelm anything).
The resulting :class:`ReplayReport` separates accepted requests from
shed ones and records whether every rejection was **well-formed**: a
structured 503 with a ``Retry-After`` header and a
``retry_after_s`` hint in the error body.  This is the engine of the
``serve_overload`` bench case and the overload chaos tests.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "TRACE_SCHEMA",
    "TraceRequest",
    "RequestOutcome",
    "ReplayReport",
    "generate_trace",
    "save_trace",
    "load_trace",
    "replay_trace",
    "http_request",
    "http_exchange",
    "percentile",
    "latency_study",
    "estimate_capacity",
    "overload_drill",
]

TRACE_SCHEMA = "repro-serve-trace/1"

#: Endpoint sampling weights of the default workload mix.
DEFAULT_ENDPOINT_MIX = {
    "characterize": 0.6,
    "standardize": 0.25,
    "recommend-heuristic": 0.15,
}


@dataclass(frozen=True)
class TraceRequest:
    """One request of a trace: arrival offset, endpoint, JSON payload."""

    offset_s: float
    endpoint: str
    payload: dict

    def to_record(self) -> dict:
        return {
            "offset_s": self.offset_s,
            "endpoint": self.endpoint,
            "payload": self.payload,
        }


@dataclass(frozen=True)
class RequestOutcome:
    """One replayed request's result.

    ``retry_after_s`` is the back-off hint parsed from a shed (503)
    answer's ``Retry-After`` header; ``well_formed`` records whether an
    error answer carried the structured body shape the protocol
    promises (JSON document with ``error.category`` — and, for 503s,
    both the header and the ``retry_after_s`` body field).
    """

    index: int
    endpoint: str
    status: int
    latency_s: float
    category: str | None = None  # error category on non-200 answers
    retry_after_s: float | None = None
    well_formed: bool = True
    digest: str | None = None  # SHA-256 of a 200 answer's body bytes
    trace_id: str | None = None  # the answer's X-Repro-Trace-Id header


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence.

    Examples
    --------
    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.0
    >>> percentile([1.0, 2.0, 3.0, 4.0], 99)
    4.0
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one trace replay against a live server."""

    outcomes: tuple[RequestOutcome, ...]
    wall_s: float

    @property
    def ok(self) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == 200)

    @property
    def errors(self) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status != 200)

    @property
    def shed(self) -> tuple[RequestOutcome, ...]:
        """The load-shed answers (structured 503s)."""
        return tuple(o for o in self.outcomes if o.status == 503)

    @property
    def malformed(self) -> tuple[RequestOutcome, ...]:
        """Error answers that broke the structured-body contract."""
        return tuple(
            o for o in self.outcomes if o.status != 200 and not o.well_formed
        )

    def latencies_ms(self, endpoint: str | None = None) -> list[float]:
        return [
            o.latency_s * 1e3
            for o in self.outcomes
            if endpoint is None or o.endpoint == endpoint
        ]

    def percentiles(self) -> dict:
        """{"p50_ms": ..., "p99_ms": ...} over every replayed request."""
        latencies = self.latencies_ms()
        return {
            "p50_ms": percentile(latencies, 50),
            "p99_ms": percentile(latencies, 99),
        }

    def by_category(self) -> dict[str, int]:
        """Error-category histogram of the non-200 answers."""
        counts: dict[str, int] = {}
        for outcome in self.errors:
            key = outcome.category or f"http-{outcome.status}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def accepted_percentiles(self) -> dict:
        """p50/p99 over the *accepted* (200) requests, or Nones.

        Under overload this is the latency that matters: the shed
        requests answer in microseconds by design and would make the
        blended percentiles look flatteringly fast.
        """
        latencies = [o.latency_s * 1e3 for o in self.ok]
        if not latencies:
            return {"accepted_p50_ms": None, "accepted_p99_ms": None}
        return {
            "accepted_p50_ms": percentile(latencies, 50),
            "accepted_p99_ms": percentile(latencies, 99),
        }

    def to_payload(self) -> dict:
        """JSON-safe digest (CI logs, bench snapshots)."""
        categories = self.by_category()
        return {
            "requests": len(self.outcomes),
            "ok": len(self.ok),
            "errors": len(self.errors),
            "shed": len(self.shed),
            "traced": sum(1 for o in self.outcomes if o.trace_id),
            "deadline_exceeded": categories.get("deadline-exceeded", 0),
            "malformed_errors": len(self.malformed),
            "error_categories": categories,
            "wall_s": self.wall_s,
            **self.percentiles(),
            **self.accepted_percentiles(),
        }

    def summary(self) -> str:
        p = self.percentiles()
        lines = [
            f"replayed {len(self.outcomes)} request(s) in "
            f"{self.wall_s * 1e3:.1f}ms: {len(self.ok)} ok, "
            f"{len(self.errors)} error(s), {len(self.shed)} shed",
            f"  latency p50={p['p50_ms']:.2f}ms p99={p['p99_ms']:.2f}ms",
        ]
        accepted = self.accepted_percentiles()
        if accepted["accepted_p50_ms"] is not None:
            lines.append(
                "  accepted-only "
                f"p50={accepted['accepted_p50_ms']:.2f}ms "
                f"p99={accepted['accepted_p99_ms']:.2f}ms"
            )
        if self.malformed:
            lines.append(
                f"  MALFORMED error bodies: {len(self.malformed)}"
            )
        for category, count in sorted(self.by_category().items()):
            lines.append(f"  error category {category}: {count}")
        return "\n".join(lines)


# -- generation --------------------------------------------------------


def generate_trace(
    *,
    requests: int = 64,
    seed: int = 0,
    shape: tuple[int, int] = (8, 8),
    rate_hz: float = 200.0,
    duplicate_fraction: float = 0.3,
    perturb_fraction: float = 0.3,
    endpoint_mix: dict[str, float] | None = None,
    faults: str | dict | None = None,
    fault_seed: int = 0,
    deadline_ms: float | None = None,
    deadline_fraction: float = 1.0,
) -> list[TraceRequest]:
    """A deterministic service workload (same seed → same trace).

    ``duplicate_fraction`` of the requests resubmit a base matrix
    byte-for-byte (cache-hit material); ``perturb_fraction`` submit a
    small multiplicative perturbation of a base matrix (same shape, new
    content — coalescing material); the rest draw fresh matrices.
    Arrivals are exponential with mean rate ``rate_hz``.

    ``deadline_ms`` stamps a per-request latency budget into a seeded
    ``deadline_fraction`` of the payloads (all of them by default) —
    the overload traces use this to exercise the deadline-shed path.

    Examples
    --------
    >>> a = generate_trace(requests=8, seed=7)
    >>> b = generate_trace(requests=8, seed=7)
    >>> [r.to_record() for r in a] == [r.to_record() for r in b]
    True
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not 0 <= duplicate_fraction + perturb_fraction <= 1:
        raise ValueError(
            "duplicate_fraction + perturb_fraction must be in [0, 1], got "
            f"{duplicate_fraction} + {perturb_fraction}"
        )
    mix = dict(endpoint_mix or DEFAULT_ENDPOINT_MIX)
    names = sorted(mix)
    weights = np.array([float(mix[n]) for n in names])
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError(f"endpoint_mix must be non-negative, got {mix}")
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)
    n_base = max(2, requests // 8)
    base = rng.uniform(0.5, 10.0, size=(n_base, *shape))
    offsets = np.cumsum(rng.exponential(1.0 / rate_hz, size=requests))

    plan = None
    if faults is not None:
        from ..robust.chaos import FaultPlan

        plan = FaultPlan.random(requests, faults=faults, seed=fault_seed)

    trace: list[TraceRequest] = []
    for i in range(requests):
        endpoint = names[int(rng.choice(len(names), p=weights))]
        draw = rng.uniform()
        if draw < duplicate_fraction:
            matrix = base[int(rng.integers(n_base))]
        elif draw < duplicate_fraction + perturb_fraction:
            jitter = 1.0 + rng.uniform(-0.02, 0.02, size=shape)
            matrix = base[int(rng.integers(n_base))] * jitter
        else:
            matrix = rng.uniform(0.5, 10.0, size=shape)
        if plan is not None:
            matrix = plan.apply_member(i, matrix)
        payload: dict = {"matrix": matrix.tolist()}
        if deadline_ms is not None and rng.uniform() < deadline_fraction:
            payload["deadline_ms"] = float(deadline_ms)
        trace.append(
            TraceRequest(
                offset_s=float(offsets[i]),
                endpoint=endpoint,
                payload=payload,
            )
        )
    return trace


def save_trace(trace, path) -> Path:
    """Write a trace as JSONL (schema header + one record per line)."""
    trace = list(trace)
    path = Path(path)
    lines = [json.dumps({"schema": TRACE_SCHEMA, "requests": len(trace)})]
    lines += [json.dumps(r.to_record(), allow_nan=True) for r in trace]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_trace(path) -> list[TraceRequest]:
    """Load a JSONL trace; raises :class:`ValueError` on bad files."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not a JSON record ({exc})"
            ) from exc
    if not records or records[0].get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: missing trace schema header {TRACE_SCHEMA!r}"
        )
    trace = []
    for record in records[1:]:
        try:
            trace.append(
                TraceRequest(
                    offset_s=float(record["offset_s"]),
                    endpoint=str(record["endpoint"]),
                    payload=dict(record["payload"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{path}: malformed trace record {record!r} ({exc})"
            ) from exc
    return trace


# -- the replay client -------------------------------------------------


async def http_exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    *,
    timeout_s: float = 30.0,
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP/1.1 exchange; returns (status, headers, body).

    Header names are lower-cased; ``Connection: close`` framing over
    asyncio streams (one connection per request, like the server).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1", "replace").split("\r\n")
    parts = lines[0].split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed HTTP status line {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers, payload


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    *,
    timeout_s: float = 30.0,
) -> tuple[int, bytes]:
    """:func:`http_exchange` without the headers (compat wrapper)."""
    status, _, payload = await http_exchange(
        host, port, method, path, body, timeout_s=timeout_s
    )
    return status, payload


def _error_category(body: bytes) -> str | None:
    try:
        document = json.loads(body.decode("utf-8"))
        return document["error"]["category"]
    except (ValueError, KeyError, TypeError):
        return None


def _classify_error(
    status: int, headers: dict[str, str], body: bytes
) -> tuple[str | None, float | None, bool]:
    """(category, retry_after_s, well_formed) of one error answer.

    Well-formed means: the body is a JSON document with a non-empty
    ``error.category`` string, and — for shed (503) answers — the
    ``Retry-After`` header parses as a number and the body carries the
    sub-second ``retry_after_s`` hint.
    """
    retry_after_s: float | None = None
    try:
        document = json.loads(body.decode("utf-8"))
        error = document["error"]
        category = error["category"]
        well_formed = isinstance(category, str) and bool(category)
    except (ValueError, KeyError, TypeError):
        return None, None, False
    if status == 503:
        header = headers.get("retry-after")
        try:
            retry_after_s = float(header) if header is not None else None
        except ValueError:
            retry_after_s = None
        if retry_after_s is None or "retry_after_s" not in error:
            well_formed = False
    return category, retry_after_s, well_formed


async def replay_trace_async(
    trace,
    host: str,
    port: int,
    *,
    time_scale: float = 1.0,
    timeout_s: float = 30.0,
) -> ReplayReport:
    """Fire a trace at a live server, honouring arrival offsets.

    ``time_scale`` stretches (>1) or compresses (<1) the recorded
    inter-arrival gaps; 0 releases everything at once.
    """
    trace = list(trace)
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def _one(index: int, request: TraceRequest) -> RequestOutcome:
        delay = request.offset_s * time_scale - (loop.time() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        body = json.dumps(request.payload, allow_nan=True).encode("utf-8")
        t0 = loop.time()
        status, headers, answer = await http_exchange(
            host,
            port,
            "POST",
            f"/v1/{request.endpoint}",
            body,
            timeout_s=timeout_s,
        )
        latency = loop.time() - t0
        category: str | None = None
        retry_after_s: float | None = None
        well_formed = True
        digest: str | None = None
        if status == 200:
            digest = hashlib.sha256(answer).hexdigest()
        else:
            category, retry_after_s, well_formed = _classify_error(
                status, headers, answer
            )
        return RequestOutcome(
            index=index,
            endpoint=request.endpoint,
            status=status,
            latency_s=latency,
            category=category,
            retry_after_s=retry_after_s,
            well_formed=well_formed,
            digest=digest,
            trace_id=headers.get("x-repro-trace-id"),
        )

    outcomes = await asyncio.gather(
        *(_one(i, r) for i, r in enumerate(trace))
    )
    return ReplayReport(
        outcomes=tuple(outcomes), wall_s=loop.time() - start
    )


def replay_trace(
    trace,
    host: str,
    port: int,
    *,
    time_scale: float = 1.0,
    timeout_s: float = 30.0,
) -> ReplayReport:
    """Synchronous wrapper around :func:`replay_trace_async`."""
    return asyncio.run(
        replay_trace_async(
            trace, host, port, time_scale=time_scale, timeout_s=timeout_s
        )
    )


# -- the three-path latency probe (bench engine) -----------------------


@dataclass(frozen=True)
class _PathLatencies:
    label: str
    latencies_s: list[float] = field(default_factory=list)

    def to_payload(self) -> dict:
        ms = [v * 1e3 for v in self.latencies_s]
        return {
            "n": len(ms),
            "p50_ms": round(percentile(ms, 50), 4),
            "p99_ms": round(percentile(ms, 99), 4),
        }


def latency_study(
    host: str,
    port: int,
    *,
    shape: tuple[int, int] = (8, 8),
    cold: int = 8,
    coalesce_width: int = 16,
    cache_repeats: int = 16,
    seed: int = 0,
) -> dict:
    """p50/p99 of the three canonical serving paths against a server.

    * **cold** — unique matrices, issued one at a time: every request
      pays a batch-of-one kernel call;
    * **coalesced** — a concurrent burst of distinct same-shape
      matrices: the coalescer stacks them into one batched call;
    * **cache_hit** — one matrix warmed once, then resubmitted: every
      request answers from the content-addressed cache.
    """
    rng = np.random.default_rng(seed)

    def _body(matrix) -> bytes:
        return json.dumps({"matrix": matrix.tolist()}).encode("utf-8")

    async def _post(body: bytes) -> float:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        status, answer = await http_request(
            host, port, "POST", "/v1/characterize", body
        )
        if status != 200:
            raise RuntimeError(
                f"latency_study request failed ({status}): {answer!r}"
            )
        return loop.time() - t0

    async def _run() -> dict:
        paths = {
            "cold": _PathLatencies("cold"),
            "coalesced": _PathLatencies("coalesced"),
            "cache_hit": _PathLatencies("cache_hit"),
        }
        for _ in range(cold):
            body = _body(rng.uniform(0.5, 10.0, size=shape))
            paths["cold"].latencies_s.append(await _post(body))
        burst = [
            _body(rng.uniform(0.5, 10.0, size=shape))
            for _ in range(coalesce_width)
        ]
        paths["coalesced"].latencies_s.extend(
            await asyncio.gather(*(_post(b) for b in burst))
        )
        warm = _body(rng.uniform(0.5, 10.0, size=shape))
        await _post(warm)  # populate the cache
        for _ in range(cache_repeats):
            paths["cache_hit"].latencies_s.append(await _post(warm))
        return {name: p.to_payload() for name, p in paths.items()}

    return asyncio.run(_run())


# -- overload drills ---------------------------------------------------


def estimate_capacity(
    host: str,
    port: int,
    *,
    shape: tuple[int, int] = (8, 8),
    probe: int = 16,
    seed: int = 0,
    timeout_s: float = 30.0,
) -> float:
    """Rough sustainable throughput (requests/s) of a live server.

    One closed-loop burst of ``probe`` distinct same-shape characterize
    requests, issued concurrently so the coalescer batches them —
    throughput is ``probe / wall``.  Deliberately a *favourable*
    measurement: the overload drill multiplies it, so underestimating
    capacity would only make the drill harsher.
    """
    rng = np.random.default_rng(seed)
    bodies = [
        json.dumps(
            {"matrix": rng.uniform(0.5, 10.0, size=shape).tolist()}
        ).encode("utf-8")
        for _ in range(probe)
    ]

    async def _run() -> float:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        await asyncio.gather(
            *(
                http_exchange(
                    host, port, "POST", "/v1/characterize", body,
                    timeout_s=timeout_s,
                )
                for body in bodies
            )
        )
        return probe / max(1e-6, loop.time() - t0)

    return asyncio.run(_run())


def overload_drill(
    host: str,
    port: int,
    *,
    multiplier: float = 5.0,
    requests: int = 96,
    seed: int = 0,
    shape: tuple[int, int] = (8, 8),
    deadline_ms: float | None = None,
    capacity_hz: float | None = None,
    max_rate_hz: float = 5000.0,
    timeout_s: float = 30.0,
) -> dict:
    """Open-loop Poisson overload: offer ``multiplier``× the capacity.

    Generates a seeded trace with Poisson arrivals at
    ``capacity_hz * multiplier`` (measuring capacity first via
    :func:`estimate_capacity` when not given) and replays it
    **open-loop** — every request fires at its scheduled arrival time
    no matter how the server is coping, which is what a real overload
    looks like.  All requests are distinct same-shape matrices
    (``duplicate_fraction=0``), so nothing hides behind the cache.

    Returns ``{"report": ReplayReport, "capacity_hz", "offered_hz",
    "multiplier"}``; callers assert on the report (no crash, bounded
    accepted-p99, well-formed rejections).
    """
    if multiplier <= 0:
        raise ValueError(f"multiplier must be > 0, got {multiplier}")
    if capacity_hz is None:
        capacity_hz = estimate_capacity(
            host, port, shape=shape, seed=seed, timeout_s=timeout_s
        )
    offered_hz = min(max_rate_hz, capacity_hz * multiplier)
    trace = generate_trace(
        requests=requests,
        seed=seed,
        shape=shape,
        rate_hz=offered_hz,
        duplicate_fraction=0.0,
        perturb_fraction=0.3,
        deadline_ms=deadline_ms,
    )
    report = replay_trace(
        trace, host, port, time_scale=1.0, timeout_s=timeout_s
    )
    return {
        "report": report,
        "capacity_hz": float(capacity_hz),
        "offered_hz": float(offered_hz),
        "multiplier": float(multiplier),
    }
