"""Convergence diagnostics for the Sinkhorn iteration.

Theory (Knight 2008): for a positive matrix, the alternating-scaling
iteration converges linearly with asymptotic rate ``σ₂²`` — the squared
second singular value of the *standard form*.  These helpers extract
the empirical rate from a :class:`~repro.normalize.NormalizationResult`
residual history and predict iteration counts, making the
tolerance-vs-iterations trade-off (ablation A2) quantitative instead of
anecdotal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import MatrixValueError
from .sinkhorn import NormalizationResult

__all__ = ["ConvergenceDiagnostics", "convergence_diagnostics",
           "predict_iterations"]


@dataclass(frozen=True)
class ConvergenceDiagnostics:
    """Empirical linear-convergence statistics of one Sinkhorn run.

    Attributes
    ----------
    rate : float
        Geometric-mean per-iteration residual contraction over the
        tail of the history (NaN when fewer than three informative
        points exist).  For positive matrices this estimates ``σ₂²``.
    iterations : int
        Iterations the run used.
    initial_residual, final_residual : float
    half_life : float
        Iterations per residual halving, ``log 2 / -log rate``
        (``inf`` when the rate estimate is unavailable or ≥ 1).
    """

    rate: float
    iterations: int
    initial_residual: float
    final_residual: float

    @property
    def half_life(self) -> float:
        if not (0.0 < self.rate < 1.0):
            return math.inf
        return math.log(2.0) / -math.log(self.rate)


def convergence_diagnostics(
    result: NormalizationResult, *, tail: int = 5
) -> ConvergenceDiagnostics:
    """Estimate the linear rate from a run's residual history.

    The estimate uses the geometric mean of consecutive residual
    ratios over the last ``tail`` informative iterations (the early
    transient is not representative of the asymptotic rate).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.normalize import sinkhorn_knopp
    >>> res = sinkhorn_knopp(np.array([[5.0, 1.0], [2.0, 5.0]]),
    ...                      tol=1e-12)
    >>> diag = convergence_diagnostics(res)
    >>> 0.0 < diag.rate < 1.0    # estimates sigma_2(standard form)**2
    True
    """
    history = np.asarray(result.residual_history, dtype=np.float64)
    informative = history[history > 0]
    if informative.shape[0] < 3:
        rate = float("nan")
    else:
        window = informative[-(tail + 1):]
        ratios = window[1:] / window[:-1]
        ratios = ratios[(ratios > 0) & np.isfinite(ratios)]
        rate = float(np.exp(np.mean(np.log(ratios)))) if ratios.size else float("nan")
    return ConvergenceDiagnostics(
        rate=rate,
        iterations=result.iterations,
        initial_residual=float(history[0]),
        final_residual=float(history[-1]),
    )


def predict_iterations(
    initial_residual: float, rate: float, tol: float
) -> int:
    """Iterations needed to shrink a residual to ``tol`` at a linear
    ``rate`` — ``ceil(log(tol / r0) / log(rate))``.

    Raises :class:`~repro.exceptions.MatrixValueError` for rates
    outside (0, 1) (no linear convergence to predict).

    Examples
    --------
    >>> predict_iterations(1.0, 0.1, 1e-8)
    8
    """
    if not (0.0 < rate < 1.0):
        raise MatrixValueError(
            f"rate must be in (0, 1) for a linear-convergence prediction, "
            f"got {rate}"
        )
    if initial_residual <= 0 or tol <= 0:
        raise MatrixValueError("residual and tol must be positive")
    if initial_residual <= tol:
        return 0
    # The epsilon guards against ceil() bumping exact powers (e.g.
    # log(1e-8)/log(0.1) evaluating to 8.000000000000002).
    steps = math.log(tol / initial_residual) / math.log(rate)
    return int(math.ceil(steps - 1e-9))
