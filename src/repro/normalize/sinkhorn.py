"""Alternating row/column scaling (paper eq. 9, Theorem 1).

The iteration alternates between scaling every column to a target sum
and scaling every row to a target sum.  For a positive T × M matrix and
consistent targets (``T * row_target == M * col_target``), Sinkhorn's
theorem — extended to rectangular matrices in the paper's Appendix A —
guarantees convergence to a unique scaling ``D1 @ A @ D2`` (the diagonal
factors are unique up to a reciprocal scalar pair).

For matrices with zero entries the iteration may fail to converge
(paper Section VI); :mod:`repro.structure` predicts this from the zero
pattern alone.

The kernel is fully vectorized: one iteration is two sums and two
broadcast multiplies, O(T·M) with no Python-level loops over entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import (
    as_float_matrix,
    check_positive_scalar,
)
from ..backends import resolve_backend
from ..backends.base import check_precision, coerce_warm_start, run_sinkhorn
from ..exceptions import ConvergenceError, MatrixValueError
from ..obs import metrics as _metrics
from ..obs import span as _obs_span

__all__ = [
    "NormalizationResult",
    "sinkhorn_knopp",
    "scale_to_margins",
    "scale_by_diagonals",
]

#: The continuation hint every ConvergenceError carries, scalar and
#: batched alike (asserted by tests/normalize/test_convergence_messages).
CONVERGENCE_HINT = (
    "the matrix may be decomposable — see repro.structure.is_normalizable"
)


def convergence_message(
    what: str,
    *,
    tol: float,
    iterations: int,
    residual: float | None = None,
    failing=None,
    deadline_s: float | None = None,
) -> str:
    """The unified non-convergence message shared by every variant.

    ``what`` names the failing subject ("row/column normalization",
    "margin scaling", "3 of 8 slices"); the optional details name the
    final residual, the first failing slice indices (batched variants)
    and an expired wall-clock deadline.  Every message ends with the
    same :data:`CONVERGENCE_HINT` continuation so operators always get
    the Section-VI pointer.
    """
    message = f"{what} did not reach tol={tol:g} within {iterations} iterations"
    details = []
    if residual is not None:
        details.append(f"residual={residual:.3e}")
    if failing is not None:
        details.append(f"first failing slices: {failing}")
    if deadline_s is not None:
        details.append(f"deadline_s={deadline_s:g} expired")
    if details:
        message += f" ({', '.join(details)})"
    return f"{message}; {CONVERGENCE_HINT}"


def _check_deadline(deadline_s: float | None) -> float | None:
    """Validate ``deadline_s`` and convert it to a monotonic end time."""
    if deadline_s is None:
        return None
    if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
        raise MatrixValueError(
            f"deadline_s must be a non-negative number or None, got "
            f"{deadline_s!r}"
        )
    if deadline_s < 0 or np.isnan(deadline_s):
        raise MatrixValueError(
            f"deadline_s must be a non-negative number or None, got "
            f"{deadline_s!r}"
        )
    return time.monotonic() + float(deadline_s)


@dataclass(frozen=True)
class NormalizationResult:
    """Outcome of the alternating-scaling iteration.

    Attributes
    ----------
    matrix : numpy.ndarray
        The scaled matrix ``D1 @ A @ D2`` (a fresh array).
    row_scale, col_scale : numpy.ndarray
        The diagonals of ``D1`` (length T) and ``D2`` (length M).
    converged : bool
        True when the residual dropped below ``tol`` within
        ``max_iterations``.
    iterations : int
        Number of full iterations performed (one column pass plus one
        row pass each, matching the paper's Section V counting).
    residual : float
        Final residual: the largest absolute deviation of any row or
        column sum from its target.
    residual_history : tuple of float
        Residual after each full iteration (index 0 is the residual of
        the *input* matrix, before any scaling).
    row_target, col_target : float
        The target sums the iteration aimed for.
    """

    matrix: np.ndarray
    row_scale: np.ndarray
    col_scale: np.ndarray
    converged: bool
    iterations: int
    residual: float
    residual_history: tuple[float, ...] = field(repr=False)
    row_target: float = 1.0
    col_target: float = 1.0

    def max_sum_error(self) -> float:
        """Recompute the residual from ``matrix`` (diagnostic helper)."""
        return _residual(self.matrix, self.row_target, self.col_target)


def _residual(matrix: np.ndarray, row_target: float, col_target: float) -> float:
    row_err = np.abs(matrix.sum(axis=1) - row_target).max()
    col_err = np.abs(matrix.sum(axis=0) - col_target).max()
    return float(max(row_err, col_err))


def sinkhorn_knopp(
    matrix,
    *,
    row_target: float = 1.0,
    col_target: float | None = None,
    tol: float = 1e-8,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
    deadline_s: float | None = None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> NormalizationResult:
    """Scale ``matrix`` so rows sum to ``row_target`` and columns to
    ``col_target`` by alternating column and row normalizations.

    Parameters
    ----------
    matrix : array-like, shape (T, M)
        Non-negative matrix with no all-zero row or column.
    row_target : float
        Desired sum of every row.
    col_target : float, optional
        Desired sum of every column.  Defaults to the unique consistent
        value ``T * row_target / M`` (the grand total of the matrix is
        both ``T * row_target`` and ``M * col_target``).  An explicit
        inconsistent pair is rejected.
    tol : float
        Convergence threshold on the largest absolute row/column-sum
        error (the paper stops at 1e-8).
    max_iterations : int
        Upper bound on full (column pass + row pass) iterations.
    require_convergence : bool
        When True (default) a :class:`~repro.exceptions.ConvergenceError`
        is raised if the tolerance is not reached; when False the best
        iterate is returned with ``converged=False`` so callers can
        inspect the residual history (useful for the decomposable
        matrices of Section VI).
    deadline_s : float, optional
        Wall-clock budget for the iteration.  When it expires the loop
        stops exactly as if ``max_iterations`` had been exhausted: the
        best iterate is returned flagged ``converged=False`` (or a
        :class:`~repro.exceptions.ConvergenceError` naming the expired
        deadline is raised under ``require_convergence=True``), so a
        non-normalizable input can never hang a caller past its budget.
    backend : str or KernelBackend, optional
        Kernel backend running the inner loop (see
        :mod:`repro.backends`); defaults to the ``REPRO_BACKEND``
        environment variable, then the numpy reference.
    precision : {"float64", "float32"}, optional
        ``"float32"`` runs a coarse single-precision phase first, then
        verifies the derived scales against a float64 residual check
        and polishes in float64 — the result is always
        float64-verified.  Default ``"float64"``.
    warm_start : ScalingOutcome or (row_scale, col_scale), optional
        Scaling vectors from a previous run (e.g. on an unperturbed
        copy of this matrix) applied before iterating, so
        near-identical resubmissions re-converge in a few iterations.
        The reported ``row_scale``/``col_scale`` include the
        warm-start factors, and ``iterations`` counts only the new
        iterations.

    Returns
    -------
    NormalizationResult

    Notes
    -----
    Following paper eq. (9) the column pass runs first; iteration ``k``
    in the result counts one column pass followed by one row pass, and
    the stopping rule checks the *joint* residual after the row pass —
    identical to the procedure the paper reports converging in 6 and 7
    iterations on the SPEC CINT/CFP matrices.
    """
    be = resolve_backend(backend)
    precision = check_precision(precision)
    work = as_float_matrix(matrix, name="matrix").copy()
    if np.isinf(work).any():
        raise MatrixValueError("matrix must be finite (got inf entries)")
    if (work < 0).any():
        raise MatrixValueError("matrix must be non-negative")
    n_rows, n_cols = work.shape
    row_target = check_positive_scalar(row_target, name="row_target")
    implied = n_rows * row_target / n_cols
    if col_target is None:
        col_target = implied
    else:
        col_target = check_positive_scalar(col_target, name="col_target")
        if not np.isclose(col_target, implied, rtol=1e-12, atol=0.0):
            raise MatrixValueError(
                "inconsistent targets: need T*row_target == M*col_target "
                f"({n_rows}*{row_target} != {n_cols}*{col_target})"
            )
    row_sums = work.sum(axis=1)
    col_sums = work.sum(axis=0)
    if (row_sums == 0).any() or (col_sums == 0).any():
        raise MatrixValueError(
            "matrix has an all-zero row or column; no scaling can fix that"
        )

    row_scale = np.ones(n_rows, dtype=np.float64)
    col_scale = np.ones(n_cols, dtype=np.float64)
    if warm_start is not None:
        warm_rows, warm_cols = coerce_warm_start(warm_start, n_rows, n_cols)
        # Same expression as scale_by_diagonals, so a warm start from a
        # converged run reproduces that result bit-for-bit.
        work = warm_rows[:, None] * work * warm_cols[None, :]
        row_scale = warm_rows.copy()
        col_scale = warm_cols.copy()
    history = [_residual(work, row_target, col_target)]
    converged = history[0] <= tol
    iterations = 0
    t_end = _check_deadline(deadline_s)
    timed_out = False
    precision_outcome = None
    with _obs_span("sinkhorn.scalar", rows=n_rows, cols=n_cols) as sp:
        if not converged:
            row_targets = np.full(n_rows, row_target, dtype=np.float64)
            col_targets = np.full(n_cols, col_target, dtype=np.float64)
            iterations, converged, timed_out, precision_outcome = run_sinkhorn(
                be,
                work,
                row_targets,
                col_targets,
                tol=tol,
                max_iterations=max_iterations,
                row_scale=row_scale,
                col_scale=col_scale,
                history=history,
                t_end=t_end,
                precision=precision,
            )
        sp.note(
            iterations=iterations,
            converged=converged,
            residual=history[-1],
            timed_out=timed_out,
        )
        sp.sample("residual", history)
    _metrics.observe_sinkhorn(
        "scalar",
        iterations=iterations,
        residual=history[-1],
        converged=converged,
    )
    _metrics.count_backend_dispatch(be.name, "sinkhorn_scalar")
    if precision_outcome is not None:
        _metrics.count_backend_precision(be.name, precision_outcome)
    if warm_start is not None:
        _metrics.count_warm_start(
            "sinkhorn_scalar", "converged" if converged else "pending"
        )
    if not converged and require_convergence:
        raise ConvergenceError(
            convergence_message(
                "row/column normalization",
                tol=tol,
                iterations=iterations,
                residual=history[-1],
                deadline_s=deadline_s if timed_out else None,
            ),
            iterations=iterations,
            residual=history[-1],
        )
    return NormalizationResult(
        matrix=work,
        row_scale=row_scale,
        col_scale=col_scale,
        converged=converged,
        iterations=iterations,
        residual=history[-1],
        residual_history=tuple(history),
        row_target=row_target,
        col_target=col_target,
    )


def scale_to_margins(
    matrix,
    row_sums,
    col_sums,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
    deadline_s: float | None = None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> NormalizationResult:
    """Scale ``matrix`` to *prescribed, possibly unequal* margins.

    The generalized Sinkhorn problem: find diagonal ``D1, D2`` so that
    ``D1 @ A @ D2`` has row sums ``row_sums[i]`` and column sums
    ``col_sums[j]``.  The grand totals must agree
    (``sum(row_sums) == sum(col_sums)``); for positive matrices the
    alternating iteration converges to the unique solution.

    This is the workhorse of :mod:`repro.generate.target_driven`:
    because TMA is invariant under any diagonal row/column scaling (the
    standard form absorbs it, Theorem 1), imposing margins whose
    adjacent-ratio averages equal the target MPH and TDH produces a
    matrix with *exactly* those three measure values.

    Returns a :class:`NormalizationResult`; ``row_target``/``col_target``
    are reported as NaN since the per-line targets are vectors here, and
    the residual is the largest absolute deviation from the prescribed
    margins.  ``backend``/``precision``/``warm_start`` behave exactly as
    in :func:`sinkhorn_knopp`.
    """
    be = resolve_backend(backend)
    precision = check_precision(precision)
    work = as_float_matrix(matrix, name="matrix").copy()
    if np.isinf(work).any():
        raise MatrixValueError("matrix must be finite (got inf entries)")
    if (work < 0).any():
        raise MatrixValueError("matrix must be non-negative")
    n_rows, n_cols = work.shape
    r = np.ascontiguousarray(row_sums, dtype=np.float64).reshape(-1)
    c = np.ascontiguousarray(col_sums, dtype=np.float64).reshape(-1)
    if r.shape[0] != n_rows or c.shape[0] != n_cols:
        raise MatrixValueError(
            f"margin lengths must match the matrix shape {work.shape}, got "
            f"{r.shape[0]} row sums and {c.shape[0]} column sums"
        )
    if (r <= 0).any() or (c <= 0).any():
        raise MatrixValueError("prescribed margins must be strictly positive")
    if not np.isclose(r.sum(), c.sum(), rtol=1e-9):
        raise MatrixValueError(
            "inconsistent margins: sum(row_sums) must equal sum(col_sums) "
            f"({r.sum():g} != {c.sum():g})"
        )
    if (work.sum(axis=1) == 0).any() or (work.sum(axis=0) == 0).any():
        raise MatrixValueError(
            "matrix has an all-zero row or column; no scaling can fix that"
        )

    def residual(mat: np.ndarray) -> float:
        return float(
            max(
                np.abs(mat.sum(axis=1) - r).max(),
                np.abs(mat.sum(axis=0) - c).max(),
            )
        )

    row_scale = np.ones(n_rows, dtype=np.float64)
    col_scale = np.ones(n_cols, dtype=np.float64)
    if warm_start is not None:
        warm_rows, warm_cols = coerce_warm_start(warm_start, n_rows, n_cols)
        work = warm_rows[:, None] * work * warm_cols[None, :]
        row_scale = warm_rows.copy()
        col_scale = warm_cols.copy()
    history = [residual(work)]
    converged = history[0] <= tol
    iterations = 0
    t_end = _check_deadline(deadline_s)
    timed_out = False
    precision_outcome = None
    with _obs_span("sinkhorn.margins", rows=n_rows, cols=n_cols) as sp:
        if not converged:
            iterations, converged, timed_out, precision_outcome = run_sinkhorn(
                be,
                work,
                r,
                c,
                tol=tol,
                max_iterations=max_iterations,
                row_scale=row_scale,
                col_scale=col_scale,
                history=history,
                t_end=t_end,
                precision=precision,
            )
        sp.note(
            iterations=iterations,
            converged=converged,
            residual=history[-1],
            timed_out=timed_out,
        )
        sp.sample("residual", history)
    _metrics.observe_sinkhorn(
        "margins",
        iterations=iterations,
        residual=history[-1],
        converged=converged,
    )
    _metrics.count_backend_dispatch(be.name, "sinkhorn_margins")
    if precision_outcome is not None:
        _metrics.count_backend_precision(be.name, precision_outcome)
    if warm_start is not None:
        _metrics.count_warm_start(
            "sinkhorn_margins", "converged" if converged else "pending"
        )
    if not converged and require_convergence:
        raise ConvergenceError(
            convergence_message(
                "margin scaling",
                tol=tol,
                iterations=iterations,
                residual=history[-1],
                deadline_s=deadline_s if timed_out else None,
            ),
            iterations=iterations,
            residual=history[-1],
        )
    return NormalizationResult(
        matrix=work,
        row_scale=row_scale,
        col_scale=col_scale,
        converged=converged,
        iterations=iterations,
        residual=history[-1],
        residual_history=tuple(history),
        row_target=float("nan"),
        col_target=float("nan"),
    )


def scale_by_diagonals(
    matrix, row_scale, col_scale
) -> np.ndarray:
    """Compute ``D1 @ A @ D2`` for diagonal scalings given as vectors.

    This is the closed form of Theorem 1's conclusion; use it to re-apply
    a scaling recovered by :func:`sinkhorn_knopp` to another matrix with
    the same labels (e.g. a perturbed copy).
    """
    arr = as_float_matrix(matrix, name="matrix")
    row_scale = np.asarray(row_scale, dtype=np.float64).reshape(-1)
    col_scale = np.asarray(col_scale, dtype=np.float64).reshape(-1)
    if row_scale.shape[0] != arr.shape[0] or col_scale.shape[0] != arr.shape[1]:
        raise MatrixValueError(
            "row_scale/col_scale lengths must match the matrix shape "
            f"{arr.shape}, got {row_scale.shape[0]} and {col_scale.shape[0]}"
        )
    return row_scale[:, None] * arr * col_scale[None, :]
