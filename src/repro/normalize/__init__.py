"""Matrix normalization: standard and canonical ECS forms.

Section III-C of the paper shows that the three heterogeneity measures
are independent only when TMA is computed from a *standard* ECS matrix —
one whose row sums are all equal and whose column sums are all equal.
This package implements:

* :func:`sinkhorn_knopp` — the alternating row/column scaling iteration
  of paper eq. (9), generalized to arbitrary consistent row/column sum
  targets (Theorem 1, a rectangular extension of Sinkhorn's theorem).
* :func:`standardize` — the specific target choice of Theorem 2
  (row sums ``sqrt(M/T)``, column sums ``sqrt(T/M)``) that pins the
  largest singular value to exactly 1 and enables the simplified TMA
  formula of eq. (8).
* :func:`column_normalize` — the simpler 1-norm column scaling used by
  the paper's precursor work [2] and by eq. (5).
* :func:`canonical_form` — sorts machines by performance and task types
  by difficulty (ascending), the ordering MPH and TDH are defined on.
"""

from .outcome import ScalingOutcome
from .sinkhorn import (
    NormalizationResult,
    sinkhorn_knopp,
    scale_to_margins,
    scale_by_diagonals,
)
from .standard_form import (
    StandardFormResult,
    standardize,
    standard_targets,
    column_normalize,
    is_standard,
)
from .canonical import CanonicalFormResult, canonical_form
from .diagnostics import (
    ConvergenceDiagnostics,
    convergence_diagnostics,
    predict_iterations,
)

__all__ = [
    "ScalingOutcome",
    "NormalizationResult",
    "sinkhorn_knopp",
    "scale_to_margins",
    "scale_by_diagonals",
    "StandardFormResult",
    "standardize",
    "standard_targets",
    "column_normalize",
    "is_standard",
    "CanonicalFormResult",
    "canonical_form",
    "ConvergenceDiagnostics",
    "convergence_diagnostics",
    "predict_iterations",
]
