"""The unified result-object protocol for scaling/normalization outcomes.

Three result classes report the outcome of an alternating-scaling run:

* :class:`~repro.normalize.NormalizationResult` — one matrix, one
  Sinkhorn run (``sinkhorn_knopp`` / ``scale_to_margins``);
* :class:`~repro.normalize.StandardFormResult` — one matrix with the
  Theorem-2 targets (``standardize``), wrapping a NormalizationResult;
* :class:`~repro.batch.BatchNormalizationResult` — an ``(N, T, M)``
  stack (``sinkhorn_knopp_batched`` / ``standardize_batched``), with
  per-slice diagnostic arrays.

Historically they drifted apart (``matrices`` vs ``matrix``,
``residual_histories`` vs ``residual_history``); all three now expose
the same seven core fields, captured by the :class:`ScalingOutcome`
protocol:

=====================  ====================================================
field                  meaning
=====================  ====================================================
``matrix``             the scaled matrix (or the whole scaled stack)
``row_scale``          diagonal of ``D1`` ((T,) vector or (N, T) array)
``col_scale``          diagonal of ``D2`` ((M,) vector or (N, M) array)
``iterations``         full column+row iterations run (int or (N,) array)
``converged``          tolerance reached (bool or (N,) bool array)
``residual``           final max row/column-sum error (float or (N,) array)
``residual_history``   residual after each iteration, entry 0 = the input
=====================  ====================================================

The scaling vectors are what make **warm starts** possible: any
ScalingOutcome can be passed as ``warm_start=`` to a later Sinkhorn
run on a perturbed copy of the same environment, which re-applies
``D1``/``D2`` before iterating (see ``docs/BACKENDS.md``).

Code written against these seven names works on any of the three
results.  The pre-protocol batch spellings (``matrices``,
``residual_histories``) went through a DeprecationWarning cycle and
have been **removed**; accessing them raises :class:`AttributeError`
naming the replacement field.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["ScalingOutcome"]


@runtime_checkable
class ScalingOutcome(Protocol):
    """Structural protocol every scaling result satisfies.

    ``isinstance(result, ScalingOutcome)`` checks that the seven core
    fields are present (it is a :func:`typing.runtime_checkable`
    protocol); the field *types* are scalars for single-matrix results
    and per-slice arrays for batch results.

    Examples
    --------
    >>> from repro.normalize import ScalingOutcome, sinkhorn_knopp
    >>> result = sinkhorn_knopp([[1.0, 2.0], [3.0, 4.0]])
    >>> isinstance(result, ScalingOutcome)
    True
    """

    @property
    def matrix(self) -> Any: ...

    @property
    def row_scale(self) -> Any: ...

    @property
    def col_scale(self) -> Any: ...

    @property
    def iterations(self) -> Any: ...

    @property
    def converged(self) -> Any: ...

    @property
    def residual(self) -> Any: ...

    @property
    def residual_history(self) -> Any: ...


def _removed_alias(old: str, new: str) -> property:
    """A property that raises for a field name removed after its
    deprecation cycle, pointing at the ScalingOutcome replacement.

    A plain missing attribute would raise too, but with no hint; this
    keeps the rename discoverable for code migrating from the
    pre-protocol spellings."""

    def getter(self):
        raise AttributeError(
            f"{type(self).__name__}.{old} was removed; use .{new} "
            "(the ScalingOutcome field name)"
        )

    getter.__name__ = old
    getter.__doc__ = f"Removed: use :attr:`{new}`."
    return property(getter)
