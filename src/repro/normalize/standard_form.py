"""The standard ECS matrix (paper Section III-C, Theorems 1 and 2).

A *standard* ECS matrix has every row summing to ``sqrt(M/T)`` and
every column summing to ``sqrt(T/M)``.  By Theorem 2 its largest
singular value is exactly 1, which

* makes TMA independent of MPH (all column sums equal) and of TDH (all
  row sums equal), and
* removes the ``1/σ1`` factor from the TMA formula (eq. 5 → eq. 8).

:func:`standardize` accepts a raw array or an :class:`~repro.core.ECSMatrix`
(whose weighting factors are applied first, per eqs. 4/6) and runs the
Sinkhorn iteration of :mod:`repro.normalize.sinkhorn` with those targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import as_ecs_array, check_choice, check_weights
from ..core.environment import ECSMatrix, ETCMatrix
from ..exceptions import NotNormalizableError
from .sinkhorn import NormalizationResult, sinkhorn_knopp

__all__ = [
    "StandardFormResult",
    "standard_targets",
    "standardize",
    "column_normalize",
    "is_standard",
]

#: Paper's stopping rule: max row/column-sum error below 1e-8 (Section V).
DEFAULT_TOL = 1e-8


def standard_targets(n_tasks: int, n_machines: int) -> tuple[float, float]:
    """The Theorem-2 target sums ``(row_target, col_target)``.

    Rows sum to ``sqrt(M/T)`` and columns to ``sqrt(T/M)``; this is
    Theorem 1 with ``k = 1/sqrt(T*M)`` and forces ``σ1 = 1``.
    """
    if n_tasks < 1 or n_machines < 1:
        raise ValueError("matrix dimensions must be positive")
    return (
        math.sqrt(n_machines / n_tasks),
        math.sqrt(n_tasks / n_machines),
    )


@dataclass(frozen=True)
class StandardFormResult:
    """A standardized ECS matrix plus the iteration diagnostics.

    Attributes
    ----------
    matrix : numpy.ndarray
        The standard ECS matrix (rows sum to ``sqrt(M/T)``, columns to
        ``sqrt(T/M)``; largest singular value 1 by Theorem 2).
    normalization : NormalizationResult
        Full Sinkhorn diagnostics (scaling diagonals, residual history).
    zeroed_entries : tuple of (int, int)
        Entries that were zeroed to reach the Sinkhorn *limit* (only
        non-empty under ``zeros="limit"``; see :func:`standardize`).
    """

    matrix: np.ndarray
    normalization: NormalizationResult
    zeroed_entries: tuple[tuple[int, int], ...] = ()

    @property
    def row_scale(self) -> np.ndarray:
        """Diagonal of ``D1`` (ScalingOutcome field; feeds warm starts)."""
        return self.normalization.row_scale

    @property
    def col_scale(self) -> np.ndarray:
        """Diagonal of ``D2`` (ScalingOutcome field; feeds warm starts)."""
        return self.normalization.col_scale

    @property
    def iterations(self) -> int:
        """Full column+row iterations used (paper reports 6/7 for SPEC)."""
        return self.normalization.iterations

    @property
    def converged(self) -> bool:
        return self.normalization.converged

    @property
    def residual(self) -> float:
        return self.normalization.residual

    @property
    def residual_history(self) -> tuple[float, ...]:
        """Residual after each iteration (ScalingOutcome field; entry 0
        is the residual of the input matrix)."""
        return self.normalization.residual_history


def _coerce_ecs(
    matrix, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Canonical environment coercion (the normalize-side twin of
    :func:`repro.measures._coerce.coerce_ecs_and_weights`).

    Accepts an :class:`~repro.core.ECSMatrix` (stored weights applied
    unless explicitly overridden), an :class:`~repro.core.ETCMatrix`
    (converted through paper eq. 1 first), or a raw array-like.
    Explicit ``task_weights``/``machine_weights`` follow the same
    override rule as the measure functions: they replace the wrapper's
    stored weights for this call.
    """
    if isinstance(matrix, ETCMatrix):
        matrix = matrix.to_ecs()
    if isinstance(matrix, ECSMatrix):
        if task_weights is None:
            task_weights = matrix.task_weights
        if machine_weights is None:
            machine_weights = matrix.machine_weights
        ecs = matrix.values
    else:
        ecs = as_ecs_array(matrix)
    if task_weights is None and machine_weights is None:
        return ecs
    w_t = check_weights(task_weights, ecs.shape[0], name="task_weights")
    w_m = check_weights(machine_weights, ecs.shape[1], name="machine_weights")
    return w_t[:, None] * w_m[None, :] * ecs


def standardize(
    matrix,
    *,
    task_weights=None,
    machine_weights=None,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    require_convergence: bool = True,
    zeros: str = "strict",
    deadline_s: float | None = None,
    backend=None,
    precision: str | None = None,
    warm_start=None,
) -> StandardFormResult:
    """Convert an ECS matrix to standard form.

    Parameters
    ----------
    matrix : ECSMatrix, ETCMatrix or array-like
        The environment.  An :class:`~repro.core.ECSMatrix` has its
        weighting factors folded in first; an
        :class:`~repro.core.ETCMatrix` is converted through eq. (1).
    task_weights, machine_weights : array-like, optional
        Weighting factors (eqs. 4/6); wrapper-stored weights are used
        when omitted, exactly as in the measure functions.
    tol, max_iterations, require_convergence, deadline_s
        Passed to :func:`repro.normalize.sinkhorn_knopp`; ``deadline_s``
        bounds the iteration in wall-clock time (graceful degradation —
        see :mod:`repro.robust`).
    backend, precision, warm_start
        Kernel backend, float32 fast path and warm-start scaling
        vectors, passed straight to
        :func:`repro.normalize.sinkhorn_knopp` (see
        :mod:`repro.backends`).  A previous ``StandardFormResult`` on a
        near-identical matrix is a valid ``warm_start``.
    zeros : {"strict", "limit"}
        How to treat zero patterns for which no exact scaling
        ``D1 (ECS) D2`` with the required sums exists (Section VI):

        * ``"strict"`` — raise
          :class:`~repro.exceptions.NotNormalizableError` (the exact
          Menon-theorem test runs *before* iterating, so the failure is
          immediate instead of a 10⁴-iteration stall).
        * ``"limit"`` — return the limit that paper eq. (9) converges
          to.  For a matrix with support but not total support, the
          Sinkhorn–Knopp iterates converge (sub-linearly) to a matrix
          whose entries outside the usable pattern are zero; this mode
          zeroes those *blocking entries* analytically (via
          :func:`repro.structure.normalizability_report`) and
          standardizes the rest in a handful of iterations.  This is
          the semantics under which the paper's Fig. 4 matrices A, B
          and D "converge to the standard form of C".  Matrices whose
          margins are infeasible outright still raise.

    Examples
    --------
    >>> import numpy as np
    >>> res = standardize(np.array([[1.0, 0.0], [0.0, 3.0]]))
    >>> np.round(res.matrix, 6)
    array([[1., 0.],
           [0., 1.]])

    Fig. 4 matrix A under the limit semantics:

    >>> res = standardize([[10.0, 0.0], [9.0, 1.0]], zeros="limit")
    >>> np.round(res.matrix, 6)
    array([[1., 0.],
           [0., 1.]])
    >>> res.zeroed_entries
    ((1, 0),)
    """
    ecs = _coerce_ecs(matrix, task_weights, machine_weights)
    check_choice(zeros, name="zeros", choices=("strict", "limit"))
    zeroed: tuple[tuple[int, int], ...] = ()
    if (ecs == 0).any():
        from ..structure import normalizability_report

        report = normalizability_report(ecs)
        if not report.feasible:
            raise NotNormalizableError(
                "no standard form exists and eq. 9 has no limit: the zero "
                "pattern admits no matrix with equal row sums and equal "
                "column sums at all"
            )
        if report.blocking_edges:
            if zeros == "strict":
                raise NotNormalizableError(
                    "no standard form exists: the matrix's zero pattern is "
                    "decomposable (paper Section VI, e.g. its eq. 10); use "
                    "zeros='limit' for the eq.-9 limit or TMA with "
                    "method='column'"
                )
            ecs = ecs.copy()
            rows, cols = zip(*report.blocking_edges)
            ecs[list(rows), list(cols)] = 0.0
            zeroed = report.blocking_edges
    n_tasks, n_machines = ecs.shape
    row_target, col_target = standard_targets(n_tasks, n_machines)
    norm = sinkhorn_knopp(
        ecs,
        row_target=row_target,
        col_target=col_target,
        tol=tol,
        max_iterations=max_iterations,
        require_convergence=require_convergence,
        deadline_s=deadline_s,
        backend=backend,
        precision=precision,
        warm_start=warm_start,
    )
    return StandardFormResult(
        matrix=norm.matrix, normalization=norm, zeroed_entries=zeroed
    )


def column_normalize(
    matrix, *, task_weights=None, machine_weights=None
) -> np.ndarray:
    """Scale every column of an ECS matrix to sum to 1 (1-norm).

    This is the normalization used in the paper's precursor [2] and in
    TMA eq. (5).  The MPH of the result is 1 by construction; row sums
    are *not* equalized, which is exactly why this paper introduces the
    full standard form once TDH joins the measure set.  Weighting
    factors follow the canonical override rule (wrapper-stored weights
    unless explicitly given).
    """
    ecs = _coerce_ecs(matrix, task_weights, machine_weights)
    return ecs / ecs.sum(axis=0, keepdims=True)


def is_standard(
    matrix, *, tol: float = 1e-6
) -> bool:
    """True when the matrix already has the Theorem-2 row/column sums."""
    ecs = _coerce_ecs(matrix)
    row_target, col_target = standard_targets(*ecs.shape)
    return (
        np.abs(ecs.sum(axis=1) - row_target).max() <= tol
        and np.abs(ecs.sum(axis=0) - col_target).max() <= tol
    )
