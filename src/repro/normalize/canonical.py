"""Canonical ECS form (paper Section III-B).

The canonical form sorts machines (columns) in ascending order of
machine performance and task types (rows) in ascending order of task
difficulty.  MPH and TDH are defined over these sorted sequences; the
library's measure functions sort internally, so the canonical form is
mainly useful for presentation, for comparing two environments
position-by-position, and for the deterministic layout of generated
matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_ecs_array, check_weights
from ..core.environment import ECSMatrix

__all__ = ["CanonicalFormResult", "canonical_form"]


@dataclass(frozen=True)
class CanonicalFormResult:
    """A canonically ordered ECS matrix with the permutations applied.

    Attributes
    ----------
    matrix : numpy.ndarray
        The reordered ECS array.
    task_order : numpy.ndarray
        ``task_order[k]`` is the original row index now at row ``k``
        (rows ascend in task difficulty).
    machine_order : numpy.ndarray
        ``machine_order[k]`` is the original column index now at column
        ``k`` (columns ascend in machine performance).
    machine_performance, task_difficulty : numpy.ndarray
        The (weighted) performance/difficulty vectors in canonical
        order, i.e. non-decreasing.
    """

    matrix: np.ndarray
    task_order: np.ndarray
    machine_order: np.ndarray
    machine_performance: np.ndarray
    task_difficulty: np.ndarray


def canonical_form(
    matrix, *, task_weights=None, machine_weights=None
) -> CanonicalFormResult:
    """Sort an ECS matrix into canonical (ascending) order.

    Parameters
    ----------
    matrix : ECSMatrix or array-like
        The environment.  When an :class:`~repro.core.ECSMatrix` is
        given its stored weights are used unless overridden.
    task_weights, machine_weights : array-like, optional
        Weighting factors for eqs. (4) and (6).

    Notes
    -----
    ``numpy.argsort(kind="stable")`` keeps ties in input order, so the
    canonical form is deterministic even for exactly homogeneous
    environments.
    """
    if isinstance(matrix, ECSMatrix):
        if task_weights is None:
            task_weights = matrix.task_weights
        if machine_weights is None:
            machine_weights = matrix.machine_weights
        ecs = matrix.values
    else:
        ecs = as_ecs_array(matrix)
    w_t = check_weights(task_weights, ecs.shape[0], name="task_weights")
    w_m = check_weights(machine_weights, ecs.shape[1], name="machine_weights")
    weighted = w_t[:, None] * w_m[None, :] * ecs
    mp = weighted.sum(axis=0)
    td = weighted.sum(axis=1)
    machine_order = np.argsort(mp, kind="stable")
    task_order = np.argsort(td, kind="stable")
    return CanonicalFormResult(
        matrix=ecs[np.ix_(task_order, machine_order)],
        task_order=task_order,
        machine_order=machine_order,
        machine_performance=mp[machine_order],
        task_difficulty=td[task_order],
    )
