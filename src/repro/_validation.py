"""Shared argument-validation helpers.

These are internal: every public entry point funnels its array inputs
through the functions here so that error messages are uniform and the
numerical kernels can assume clean, C-contiguous ``float64`` data (a
vectorization-friendly invariant; see the repo's DESIGN.md).
"""

from __future__ import annotations

import numbers

import numpy as np

from .exceptions import (
    EmptyRowColumnError,
    MatrixShapeError,
    MatrixValueError,
    WeightError,
)

__all__ = [
    "as_float_matrix",
    "as_ecs_array",
    "as_etc_array",
    "as_positive_vector",
    "check_weights",
    "check_choice",
    "check_probability",
    "check_positive_scalar",
    "check_positive_int",
]


def check_choice(value, *, name: str, choices) -> str:
    """Validate a keyword that takes one of a fixed set of strings.

    Every mode-selecting kwarg in the library (``zeros=``, ``method=``,
    ``tma_fallback=``) funnels through this helper so the accepted
    values are spelled out the same way and the error type is uniformly
    :class:`MatrixValueError` (which is also a ``ValueError``).
    """
    if value not in choices:
        expected = ", ".join(repr(c) for c in choices)
        raise MatrixValueError(
            f"{name} must be one of {expected}; got {value!r}"
        )
    return value


def as_float_matrix(values, *, name: str = "matrix") -> np.ndarray:
    """Coerce ``values`` to a 2-D C-contiguous float64 array.

    Raises :class:`MatrixShapeError` for non-2D or empty input and
    :class:`MatrixValueError` for NaN entries.  ``inf`` is allowed here
    because ETC matrices use it for incompatible task/machine pairs.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise MatrixShapeError(
            f"{name} must be 2-D, got ndim={arr.ndim} (shape {arr.shape})"
        )
    if arr.size == 0:
        raise MatrixShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    if np.isnan(arr).any():
        raise MatrixValueError(f"{name} contains NaN entries")
    return arr


def as_ecs_array(values, *, name: str = "ECS matrix") -> np.ndarray:
    """Validate an ECS (estimated computation speed) matrix.

    ECS entries are finite and non-negative; zero marks an incompatible
    task/machine pair.  All-zero rows or columns are rejected per
    Section II-B of the paper.
    """
    arr = as_float_matrix(values, name=name)
    if np.isinf(arr).any():
        raise MatrixValueError(
            f"{name} contains infinite entries; infinities belong in the "
            "ETC representation (use zero ECS for incompatible pairs)"
        )
    if (arr < 0).any():
        raise MatrixValueError(f"{name} contains negative entries")
    _reject_empty_lines(arr, name=name)
    return arr


def as_etc_array(values, *, name: str = "ETC matrix") -> np.ndarray:
    """Validate an ETC (estimated time to compute) matrix.

    ETC entries are strictly positive; ``inf`` marks an incompatible
    task/machine pair.  Rows or columns that are entirely ``inf`` are
    rejected (they would become all-zero ECS rows/columns).
    """
    arr = as_float_matrix(values, name=name)
    if (arr <= 0).any():
        raise MatrixValueError(
            f"{name} contains non-positive entries; execution times must be "
            "> 0 (use inf for incompatible task/machine pairs)"
        )
    finite = np.isfinite(arr)
    if not finite.any(axis=1).all():
        raise EmptyRowColumnError(
            f"{name} has a row of all-inf entries: a task type that no "
            "machine can execute"
        )
    if not finite.any(axis=0).all():
        raise EmptyRowColumnError(
            f"{name} has a column of all-inf entries: a machine that can "
            "execute no task type"
        )
    return arr


def _reject_empty_lines(ecs: np.ndarray, *, name: str) -> None:
    if not (ecs > 0).any(axis=1).all():
        raise EmptyRowColumnError(
            f"{name} has an all-zero row: a task type that no machine can "
            "execute"
        )
    if not (ecs > 0).any(axis=0).all():
        raise EmptyRowColumnError(
            f"{name} has an all-zero column: a machine that can execute no "
            "task type"
        )


def as_positive_vector(values, *, name: str = "vector") -> np.ndarray:
    """Coerce to a 1-D float64 array of strictly positive finite values."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise MatrixShapeError(f"{name} must be a non-empty 1-D array")
    if not np.isfinite(arr).all():
        raise MatrixValueError(f"{name} contains non-finite entries")
    if (arr <= 0).any():
        raise MatrixValueError(f"{name} must be strictly positive")
    return arr


def check_weights(weights, length: int, *, name: str) -> np.ndarray:
    """Validate a weighting-factor vector (paper eq. 4/6).

    ``None`` means unweighted and returns a vector of ones so callers can
    multiply unconditionally (branch-free inner kernels).
    """
    if weights is None:
        return np.ones(length, dtype=np.float64)
    arr = np.ascontiguousarray(weights, dtype=np.float64)
    if arr.ndim != 1 or arr.shape[0] != length:
        raise WeightError(
            f"{name} must be a 1-D vector of length {length}, got shape "
            f"{arr.shape}"
        )
    if not np.isfinite(arr).all() or (arr <= 0).any():
        raise WeightError(f"{name} must contain strictly positive finite values")
    return arr


def check_probability(value, *, name: str) -> float:
    """Validate a scalar in [0, 1]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise MatrixValueError(f"{name} must be a real number in [0, 1]")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise MatrixValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive_scalar(value, *, name: str, allow_zero: bool = False) -> float:
    """Validate a finite scalar > 0 (or >= 0 when ``allow_zero``)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise MatrixValueError(f"{name} must be a real number")
    value = float(value)
    if not np.isfinite(value):
        raise MatrixValueError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0:
            raise MatrixValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise MatrixValueError(f"{name} must be > 0, got {value}")
    return value


def check_positive_int(value, *, name: str) -> int:
    """Validate an integer >= 1."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise MatrixValueError(f"{name} must be an integer")
    value = int(value)
    if value < 1:
        raise MatrixValueError(f"{name} must be >= 1, got {value}")
    return value
