"""Merging per-shard results into one ensemble characterization.

The batched kernels are per-slice independent (the invariant the
differential harness in ``tests/batch/`` pins), so a sharded run is
just a partition of the in-memory run — merging is concatenation plus
index bookkeeping.  :func:`merge_characterizations` takes
``(start, result)`` parts whose member indices are *relative to the
part*, shifts quarantine-report indices by each part's offset, and
returns a single result indistinguishable from characterizing the
whole stack at once.

Merge is associative and order-independent: parts are sorted by their
start offset, and a merged result can itself be a part of a later
merge (carrying its own start).  The property harness in
``tests/shard/test_merge.py`` pins both laws.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..batch.ensemble import EnsembleCharacterization
from ..exceptions import MatrixShapeError, MatrixValueError
from ..robust.ensemble import RobustEnsembleCharacterization
from ..robust.taxonomy import QuarantineReport

__all__ = ["merge_characterizations", "merge_reports", "shift_report"]


def shift_report(report: QuarantineReport, offset: int) -> QuarantineReport:
    """A copy of ``report`` with every member index shifted by ``offset``."""
    if offset == 0:
        return report
    return replace(
        report,
        faults=tuple(
            replace(fault, index=fault.index + offset)
            for fault in report.faults
        ),
    )


def merge_reports(parts) -> QuarantineReport:
    """Merge ``(offset, QuarantineReport)`` parts into one report.

    Fault indices in each part are relative to the part; the merged
    report carries absolute indices, sorted.  All parts must share a
    policy.
    """
    parts = sorted(parts, key=lambda p: p[0])
    if not parts:
        raise MatrixValueError("cannot merge zero quarantine reports")
    policies = {report.policy for _, report in parts}
    if len(policies) != 1:
        raise MatrixValueError(
            f"cannot merge quarantine reports of different policies "
            f"{sorted(policies)}"
        )
    faults = []
    for offset, report in parts:
        faults.extend(shift_report(report, offset).faults)
    faults.sort(key=lambda f: f.index)
    return QuarantineReport(policy=policies.pop(), faults=tuple(faults))


def _check_contiguous(parts) -> None:
    expected = parts[0][0]
    for start, result in parts:
        if start != expected:
            raise MatrixShapeError(
                f"shard parts are not contiguous: expected a part starting "
                f"at member {expected}, got {start} (shards must partition "
                "the ensemble exactly once)"
            )
        expected = start + len(result)
    starts = [start for start, _ in parts]
    if len(set(starts)) != len(starts):
        raise MatrixShapeError(
            f"shard parts overlap: duplicate start offsets in {starts}"
        )


def merge_characterizations(parts):
    """Merge ``(start, result)`` shard parts into one characterization.

    Parameters
    ----------
    parts : iterable of (int, EnsembleCharacterization)
        Each part's result covers members ``[start, start +
        len(result))`` of the ensemble, with quarantine-report indices
        relative to the part.  Parts may arrive in any order but must
        tile a contiguous range exactly once.  When *any* part is a
        :class:`~repro.robust.RobustEnsembleCharacterization`, all must
        be, and the merged result carries the merged report.

    Returns
    -------
    EnsembleCharacterization or RobustEnsembleCharacterization
        Bit-identical to characterizing the concatenated members in one
        call (the differential harness in ``tests/shard/`` enforces
        this against the real pipeline).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.batch import characterize_ensemble
    >>> stack = np.stack([np.ones((2, 2)), np.eye(2) + 0.5, np.ones((2, 2))])
    >>> whole = characterize_ensemble(stack)
    >>> merged = merge_characterizations([
    ...     (0, characterize_ensemble(stack[:2])),
    ...     (2, characterize_ensemble(stack[2:])),
    ... ])
    >>> bool(np.array_equal(merged.tma, whole.tma))
    True
    """
    parts = sorted(parts, key=lambda p: p[0])
    if not parts:
        raise MatrixValueError("cannot merge zero shard results")
    _check_contiguous(parts)

    robust = [
        isinstance(result, RobustEnsembleCharacterization)
        for _, result in parts
    ]
    if any(robust) and not all(robust):
        raise MatrixValueError(
            "cannot merge robust and non-robust shard results (all shards "
            "of one run share a policy)"
        )
    shapes = {
        (result.n_tasks, result.n_machines) for _, result in parts
    }
    if len(shapes) != 1:
        raise MatrixShapeError(
            f"shard results disagree on member shape: {sorted(shapes)}"
        )
    n_tasks, n_machines = shapes.pop()

    base = parts[0][0]
    columns = {
        name: np.concatenate(
            [getattr(result, name) for _, result in parts]
        )
        for name in ("mph", "tdh", "tma", "iterations", "converged", "batched")
    }
    if not all(robust):
        return EnsembleCharacterization(
            n_tasks=n_tasks, n_machines=n_machines, **columns
        )
    report = merge_reports(
        [(start - base, result.report) for start, result in parts]
    )
    return RobustEnsembleCharacterization(
        n_tasks=n_tasks, n_machines=n_machines, report=report, **columns
    )
