"""repro.shard — out-of-core sharded ensemble execution.

The characterization atlas only becomes interesting at scales the
in-memory pipeline cannot hold: a million ``(8, 8)`` ETC matrices is
512 MB of raw float64 before the batched kernels make their working
copies.  This package streams such ensembles from disk with flat
memory:

* :mod:`repro.shard.store` — the on-disk stack format: raw C-order
  binary + JSON manifest, memory-mapped reads, a streaming writer
  (:func:`repro.generate.random_ecs_store` emits straight to it);
* :mod:`repro.shard.planner` — chunked execution plans under a
  peak-memory budget;
* :mod:`repro.shard.merge` — order-independent, associative merging of
  per-shard results (measures, quarantine reports);
* :mod:`repro.shard.engine` — :func:`characterize_store`, the
  streaming/scheduling driver with speculative straggler mitigation.

The headline invariant, pinned by ``tests/shard/``: a sharded run is
**bit-identical** to the in-memory
:func:`repro.batch.characterize_ensemble` on the same members, for any
chunking, across backends and robust policies.  See
``docs/SHARDING.md``.
"""

from .engine import characterize_store
from .merge import merge_characterizations, merge_reports, shift_report
from .planner import (
    DEFAULT_CHUNK_SIZE,
    WORKING_SET_FACTOR,
    Shard,
    ShardPlan,
    plan_shards,
)
from .store import (
    DATA_NAME,
    MANIFEST_NAME,
    STORE_SCHEMA,
    StackStore,
    StackStoreWriter,
    create_store,
    open_store,
    write_store,
)

__all__ = [
    "STORE_SCHEMA",
    "MANIFEST_NAME",
    "DATA_NAME",
    "StackStore",
    "StackStoreWriter",
    "create_store",
    "open_store",
    "write_store",
    "WORKING_SET_FACTOR",
    "DEFAULT_CHUNK_SIZE",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "merge_characterizations",
    "merge_reports",
    "shift_report",
    "characterize_store",
]
