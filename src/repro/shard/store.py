"""On-disk ``(N, T, M)`` stack stores: raw binary data + JSON manifest.

A :class:`StackStore` is a directory holding one ensemble stack too
large to materialize in RAM:

* ``manifest.json`` — schema tag, member count, slice shape, dtype;
* ``stack.bin`` — the raw C-order member data, one ``(T, M)`` slice
  after another.

The layout is deliberately primitive: the data file is exactly what
``numpy.memmap`` wants, so readers pay zero parsing cost and the OS
page cache (not the Python heap) holds whatever is warm.  Writers
stream — :class:`StackStoreWriter` appends chunks of any size and
records the final member count only at :meth:`~StackStoreWriter.close`,
so a generator can emit a million members without ever knowing the
total up front (:func:`repro.generate.random_ecs_store` does exactly
that).

Readers get two granularities:

* :meth:`StackStore.memmap` — the whole stack as a read-only
  ``numpy.memmap`` (flat memory; pages come and go with access);
* :meth:`StackStore.read` — one ``[start, stop)`` chunk as an owned,
  C-contiguous ``float64`` array, the unit the shard execution engine
  (:mod:`repro.shard.engine`) streams through the batched kernels.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import MatrixShapeError, MatrixValueError

__all__ = [
    "STORE_SCHEMA",
    "MANIFEST_NAME",
    "DATA_NAME",
    "StackStore",
    "StackStoreWriter",
    "create_store",
    "open_store",
    "write_store",
]

#: Manifest schema tag; bump on any incompatible layout change.
STORE_SCHEMA = "repro-stack/1"

MANIFEST_NAME = "manifest.json"
DATA_NAME = "stack.bin"

#: dtypes a store may declare.  float64 is the pipeline's native type;
#: float32 halves the disk footprint for atlas-scale sweeps (members
#: are upcast to float64 by :meth:`StackStore.read`).
SUPPORTED_DTYPES = ("float64", "float32")


def _check_dims(n_tasks: int, n_machines: int) -> tuple[int, int]:
    for name, value in (("n_tasks", n_tasks), ("n_machines", n_machines)):
        if not isinstance(value, (int, np.integer)) or isinstance(
            value, bool
        ) or value < 1:
            raise MatrixValueError(
                f"{name} must be a positive int, got {value!r}"
            )
    return int(n_tasks), int(n_machines)


class StackStoreWriter:
    """Streaming writer for one :class:`StackStore` directory.

    Append ``(T, M)`` members or ``(k, T, M)`` chunks in any mix; the
    manifest is written on :meth:`close` (or context-manager exit), at
    which point the store becomes readable.  A crashed writer leaves no
    manifest behind, so half-written stores are never openable.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "demo")
    >>> with create_store(path, n_tasks=2, n_machines=3) as writer:
    ...     writer.append(np.ones((2, 3)))
    ...     writer.append(np.full((4, 2, 3), 2.0))
    1
    5
    >>> len(open_store(path))
    5
    """

    def __init__(
        self, path, *, n_tasks: int, n_machines: int, dtype: str = "float64"
    ) -> None:
        if dtype not in SUPPORTED_DTYPES:
            raise MatrixValueError(
                f"store dtype must be one of {SUPPORTED_DTYPES}, got "
                f"{dtype!r}"
            )
        self.n_tasks, self.n_machines = _check_dims(n_tasks, n_machines)
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.n_members = 0
        self._closed = False
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise MatrixValueError(
                f"{self.path} already holds a stack store; writers never "
                "overwrite (remove the directory to rebuild)"
            )
        self._fh = open(self.path / DATA_NAME, "wb")

    def append(self, members) -> int:
        """Append one ``(T, M)`` member or a ``(k, T, M)`` chunk.

        Returns the member count written so far.  Data is converted to
        the store dtype and written C-order; values are *not* screened —
        a store may legitimately hold corrupt members that the robust
        pipeline will quarantine when it streams them.
        """
        if self._closed:
            raise MatrixValueError("cannot append to a closed store writer")
        arr = np.ascontiguousarray(members, dtype=self.dtype)
        if arr.ndim == 2:
            arr = arr[None, :, :]
        if arr.ndim != 3 or arr.shape[1:] != (self.n_tasks, self.n_machines):
            raise MatrixShapeError(
                f"appended members must be (T, M) or (k, T, M) with "
                f"T={self.n_tasks}, M={self.n_machines}; got shape "
                f"{np.shape(members)}"
            )
        arr.tofile(self._fh)
        self.n_members += arr.shape[0]
        return self.n_members

    def close(self) -> "StackStore":
        """Flush the data file, write the manifest, return the store."""
        if self._closed:
            return StackStore(self.path)
        self._fh.close()
        self._closed = True
        if self.n_members == 0:
            raise MatrixShapeError(
                "cannot finalize an empty stack store (no members appended)"
            )
        manifest = {
            "schema": STORE_SCHEMA,
            "n_members": self.n_members,
            "n_tasks": self.n_tasks,
            "n_machines": self.n_machines,
            "dtype": self.dtype.name,
            "data_file": DATA_NAME,
        }
        (self.path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return StackStore(self.path)

    def __enter__(self) -> "StackStoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Abort: close the data handle but write no manifest, so
            # the half-written store can never be opened.
            self._fh.close()
            self._closed = True
            return
        self.close()


class StackStore:
    """A readable on-disk ``(N, T, M)`` stack (see the module docstring).

    Attributes
    ----------
    path : pathlib.Path
        The store directory.
    n_members, n_tasks, n_machines : int
        Stack dimensions (``shape == (n_members, n_tasks, n_machines)``).
    dtype : numpy.dtype
        On-disk element type (members are served as float64 either way).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise MatrixValueError(
                f"{self.path} is not a stack store (no {MANIFEST_NAME}); "
                "create one with repro.shard.create_store or "
                "repro.generate.random_ecs_store"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise MatrixValueError(
                f"{manifest_path}: manifest is not valid JSON ({exc})"
            ) from exc
        if manifest.get("schema") != STORE_SCHEMA:
            raise MatrixValueError(
                f"{manifest_path}: unsupported store schema "
                f"{manifest.get('schema')!r}; expected {STORE_SCHEMA!r}"
            )
        try:
            self.n_members = int(manifest["n_members"])
            self.n_tasks = int(manifest["n_tasks"])
            self.n_machines = int(manifest["n_machines"])
            dtype_name = manifest["dtype"]
            data_file = manifest.get("data_file", DATA_NAME)
        except (KeyError, TypeError, ValueError) as exc:
            raise MatrixValueError(
                f"{manifest_path}: malformed manifest ({exc!r})"
            ) from exc
        if dtype_name not in SUPPORTED_DTYPES:
            raise MatrixValueError(
                f"{manifest_path}: unsupported store dtype {dtype_name!r}"
            )
        if min(self.n_members, self.n_tasks, self.n_machines) < 1:
            raise MatrixValueError(
                f"{manifest_path}: dimensions must be positive, got "
                f"({self.n_members}, {self.n_tasks}, {self.n_machines})"
            )
        self.dtype = np.dtype(dtype_name)
        self.data_path = self.path / data_file
        if not self.data_path.is_file():
            raise MatrixValueError(
                f"{self.path}: manifest names missing data file "
                f"{data_file!r}"
            )
        expected = self.n_members * self.member_nbytes
        actual = self.data_path.stat().st_size
        if actual != expected:
            raise MatrixValueError(
                f"{self.data_path}: data file holds {actual} bytes but the "
                f"manifest declares {self.n_members} members x "
                f"{self.member_nbytes} bytes = {expected} (truncated or "
                "corrupt store)"
            )

    # -- geometry ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n_members, self.n_tasks, self.n_machines)

    @property
    def member_nbytes(self) -> int:
        """On-disk bytes of one ``(T, M)`` member."""
        return self.n_tasks * self.n_machines * self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Total on-disk data size."""
        return self.n_members * self.member_nbytes

    def __len__(self) -> int:
        return self.n_members

    def __repr__(self) -> str:
        return (
            f"StackStore({str(self.path)!r}, shape={self.shape}, "
            f"dtype={self.dtype.name})"
        )

    # -- reading -------------------------------------------------------

    def memmap(self) -> np.memmap:
        """The whole stack as a read-only memory map (native dtype)."""
        return np.memmap(
            self.data_path, dtype=self.dtype, mode="r", shape=self.shape
        )

    def read(self, start: int, stop: int) -> np.ndarray:
        """Members ``[start, stop)`` as an owned C-contiguous float64 array.

        This is the chunk-read primitive the shard engine budgets
        around: exactly ``(stop - start) * T * M * 8`` bytes of heap
        are allocated, independent of the store size.
        """
        if not 0 <= start < stop <= self.n_members:
            raise MatrixShapeError(
                f"chunk [{start}, {stop}) is out of bounds for a store of "
                f"{self.n_members} members"
            )
        mm = self.memmap()
        try:
            return np.array(mm[start:stop], dtype=np.float64, order="C")
        finally:
            del mm

    def __getitem__(self, index: int) -> np.ndarray:
        """One member as an owned float64 ``(T, M)`` array."""
        if not isinstance(index, (int, np.integer)):
            raise MatrixValueError(
                f"store indices are single member ints (use read(start, "
                f"stop) for chunks), got {index!r}"
            )
        if index < 0:
            index += self.n_members
        return self.read(index, index + 1)[0]


def create_store(
    path, *, n_tasks: int, n_machines: int, dtype: str = "float64"
) -> StackStoreWriter:
    """Open a streaming :class:`StackStoreWriter` at ``path``."""
    return StackStoreWriter(
        path, n_tasks=n_tasks, n_machines=n_machines, dtype=dtype
    )


def open_store(path) -> StackStore:
    """Open an existing store (validates manifest and data size)."""
    return StackStore(path)


def write_store(path, stack, *, dtype: str = "float64") -> StackStore:
    """Write an in-memory ``(N, T, M)`` stack as a store in one call.

    Convenience for tests and small conversions; large ensembles should
    stream through :func:`create_store` instead.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "demo")
    >>> write_store(path, np.ones((3, 2, 2))).shape
    (3, 2, 2)
    """
    arr = np.asarray(stack)
    if arr.ndim != 3:
        raise MatrixShapeError(
            f"write_store needs an (N, T, M) stack, got shape {arr.shape}"
        )
    with create_store(
        path, n_tasks=arr.shape[1], n_machines=arr.shape[2], dtype=dtype
    ) as writer:
        writer.append(arr)
    return StackStore(path)
