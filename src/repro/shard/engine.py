"""Streaming execution of disk-backed ensembles through the batched kernels.

:func:`characterize_store` is the out-of-core sibling of
:func:`repro.batch.characterize_ensemble`: it walks a
:class:`~repro.shard.store.StackStore` shard by shard (plan from
:func:`repro.shard.planner.plan_shards`), characterizes each ``(chunk,
T, M)`` slice with the in-memory pipeline, and merges the parts with
:func:`repro.shard.merge.merge_characterizations`.  Because the batched
kernels are per-slice independent, the merged result is bit-identical
to characterizing the whole stack in RAM — the differential harness in
``tests/shard/test_differential.py`` pins exactly that, across
backends and policies.

Two dispatch modes:

* ``n_jobs=1`` (default) — serial streaming: one chunk of heap at a
  time, peak memory bounded by the planner's budget regardless of the
  store size.
* ``n_jobs>=2`` — a shard scheduler over a process pool.  Workers
  receive ``(store_path, start, stop)`` and memory-map their own slice,
  so nothing but shard coordinates crosses the pickle boundary.  When a
  :class:`~repro.robust.Budget` carries ``member_timeout_s``, the
  scheduler treats it as the per-*shard* timeout and mitigates
  stragglers by speculation: a shard still running at its timeout is
  re-dispatched redundantly, the first copy to finish wins, and the
  loser is cancelled (or its process terminated at shutdown).  The
  ``repro_shard_dispatch_total`` counter records primaries,
  speculative re-dispatches, winners and cancellations.

Fault injection (:class:`~repro.robust.FaultPlan`) keeps in-memory
semantics for data faults: they are applied at *absolute* member
indices before a chunk enters the pipeline (``FaultPlan.apply_member``
derives corruption positions from the index, so shard-relative
application would corrupt different rows).  ``stall`` faults are
lifted to shard level — the shard holding a stalled member sleeps
``stall_s`` on its primary dispatch only, modelling a machine-borne
straggler that a redundant dispatch escapes; member data is untouched,
so results stay bit-identical to a stall-free run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import replace

from .._parallel import resolve_n_jobs
from ..exceptions import MatrixValueError
from ..normalize.standard_form import DEFAULT_TOL
from ..obs import current_recorder, metrics as _metrics, span as _obs_span, traced
from ..obs.trace_context import (
    TraceContext,
    append_span_record,
    current_trace,
    current_tracer,
)
from .merge import merge_characterizations
from .planner import plan_shards
from .store import StackStore

__all__ = ["characterize_store"]


def _split_faults(fault_plan, n_members: int):
    """Validate a plan against the store; split (data specs, stall specs)."""
    if fault_plan is None:
        return (), ()
    data, stalls = [], []
    for spec in fault_plan.faults:
        if spec.member >= n_members:
            raise MatrixValueError(
                f"fault targets member {spec.member} but the store has "
                f"only {n_members} members"
            )
        (stalls if spec.kind == "stall" else data).append(spec)
    return tuple(data), tuple(stalls)


def _apply_data_faults(chunk, start: int, specs) -> None:
    """Apply data faults to ``chunk`` (members ``[start, ...)``) in place.

    Faults are applied at absolute member indices via a single-spec
    :class:`~repro.robust.FaultPlan`, so the corrupted rows/columns are
    exactly the ones the in-memory ``fault_plan.apply(stack)`` would
    produce.
    """
    from ..robust.chaos import FaultPlan

    stop = start + chunk.shape[0]
    for spec in specs:
        if start <= spec.member < stop:
            plan = FaultPlan(faults=(spec,))
            chunk[spec.member - start] = plan.apply_member(
                spec.member, chunk[spec.member - start]
            )


def _chunk_kwargs(
    *,
    tol,
    max_iterations,
    tma_fallback,
    batched,
    policy,
    backend,
    precision,
) -> dict:
    return {
        "tol": tol,
        "max_iterations": max_iterations,
        "tma_fallback": tma_fallback,
        "batched": batched,
        "policy": policy,
        "backend": backend,
        "precision": precision,
    }


def _characterize_chunk(
    store: StackStore, start: int, stop: int, data_specs, budget, kwargs
):
    """Read, fault-inject and characterize one ``[start, stop)`` chunk."""
    from ..batch.ensemble import characterize_ensemble

    chunk = store.read(start, stop)
    _apply_data_faults(chunk, start, data_specs)
    return characterize_ensemble(chunk, budget=budget, **kwargs)


def _shard_worker(args):
    """Module-level pool worker (picklable): characterize one shard.

    Opens the store by path and memory-maps only its own slice; the
    primary dispatch (``attempt == 0``) hosts any injected stall, so a
    speculative re-dispatch models a healthy replacement machine.

    ``trace`` (optional) is the serialized span-context handoff:
    ``(span_file_path, shard_context_payload)``.  Both dispatch copies
    of a shard receive the *same* pre-allocated shard context, so the
    primary and its speculative backup emit sibling ``shard.worker``
    spans under one ``shard.dispatch`` parent.  The record is written
    with one ``O_APPEND`` write (atomic under ``PIPE_BUF``), so
    concurrent workers sharing the span file never interleave lines.
    """
    (
        store_path, start, stop, attempt, stall_s, data_specs, budget,
        kwargs, trace,
    ) = args
    if attempt == 0 and stall_s > 0.0:
        time.sleep(stall_s)
    wall_start = time.time()
    t0 = time.perf_counter()
    c0 = time.process_time()
    store = StackStore(store_path)
    result = _characterize_chunk(
        store, start, stop, data_specs, budget, kwargs
    )
    if trace is not None:
        trace_path, ctx_payload = trace
        context = TraceContext.from_payload(ctx_payload)
        if context is not None:
            # os.urandom span ids are fork-safe: sibling workers never
            # inherit shared RNG state and mint identical ids.
            append_span_record(
                trace_path,
                {
                    "type": "span",
                    "name": "shard.worker",
                    "trace_id": context.trace_id,
                    "span_id": os.urandom(8).hex(),
                    "parent_id": context.span_id,
                    "start": wall_start,
                    "wall_s": time.perf_counter() - t0,
                    "cpu_s": time.process_time() - c0,
                    "pid": os.getpid(),
                    "process": f"shard-worker-{os.getpid()}",
                    "meta": {
                        "attempt": attempt,
                        "start_member": start,
                        "members": stop - start,
                    },
                },
            )
    return start, result


def _shard_budget(budget, deadline):
    """The budget a chunk call runs under: run-level deadline remainder.

    The scheduler consumes ``member_timeout_s`` itself (it is the
    per-shard speculation trigger in pool mode), so the chunk pipeline
    sees only the deadline and repair knobs.
    """
    if budget is None:
        return None
    return replace(
        budget,
        deadline_s=deadline.remaining(),
        member_timeout_s=None,
    )


def _run_serial(store, plan, data_specs, shard_stalls, budget, deadline, kwargs):
    parts = []
    for shard in plan.shards:
        stall_s = shard_stalls.get(shard.index, 0.0)
        with _obs_span(
            "shard.chunk", start=shard.start, members=shard.n_members
        ):
            if stall_s > 0.0:
                time.sleep(stall_s)
            t0 = time.perf_counter()
            result = _characterize_chunk(
                store,
                shard.start,
                shard.stop,
                data_specs,
                _shard_budget(budget, deadline),
                kwargs,
            )
        _metrics.observe_shard_chunk(
            "serial", members=shard.n_members, wall_s=time.perf_counter() - t0
        )
        _metrics.count_shard_dispatch("primary")
        parts.append((shard.start, result))
    return parts


def _run_pool(
    store, plan, jobs, data_specs, shard_stalls, budget, deadline, kwargs
):
    """The speculating shard scheduler (see the module docstring)."""
    rec = current_recorder()
    timeout = budget.member_timeout_s if budget is not None else None
    store_path = str(store.path)
    # Trace handoff: pre-allocate one context per shard so both dispatch
    # copies (primary + speculative backup) emit sibling spans under the
    # same ``shard.dispatch`` parent.  Workers need a file path to append
    # to, so only file-backed tracers cross the process boundary.
    tracer = current_tracer()
    trace_path = tracer.path if tracer is not None else None
    dispatch_ctx: dict[int, TraceContext] = {}
    if trace_path is not None:
        ambient = current_trace()
        run_ctx = ambient if ambient is not None else TraceContext.new()
        for shard in plan.shards:
            dispatch_ctx[shard.index] = run_ctx.child()

    def submit(pool, shard, attempt):
        _metrics.count_shard_dispatch(
            "primary" if attempt == 0 else "speculative"
        )
        trace = None
        if trace_path is not None:
            trace = (trace_path, dispatch_ctx[shard.index].to_payload())
        return pool.submit(
            _shard_worker,
            (
                store_path,
                shard.start,
                shard.stop,
                attempt,
                shard_stalls.get(shard.index, 0.0),
                data_specs,
                _shard_budget(budget, deadline),
                kwargs,
                trace,
            ),
        )

    parts = []
    results_by_shard = {}
    outstanding = {}  # future -> (shard, attempt)
    dispatched_at = {}  # future -> monotonic dispatch time
    backups = {}  # shard.index -> backup future
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(plan.shards)))
    try:
        for shard in plan.shards:
            future = submit(pool, shard, attempt=0)
            outstanding[future] = (shard, 0)
            dispatched_at[future] = time.monotonic()

        while len(results_by_shard) < len(plan.shards):
            wait_s = None
            if timeout is not None:
                now = time.monotonic()
                due = [
                    dispatched_at[f] + timeout
                    for f, (shard, attempt) in outstanding.items()
                    if attempt == 0 and shard.index not in backups
                ]
                if due:
                    wait_s = max(0.0, min(due) - now)
            done, _ = wait(
                set(outstanding), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            for future in done:
                shard, attempt = outstanding.pop(future)
                if shard.index in results_by_shard:
                    continue  # the sibling already won
                error = future.exception()
                if error is not None:
                    raise error
                start, result = future.result()
                results_by_shard[shard.index] = (start, result)
                wall_s = time.monotonic() - dispatched_at[future]
                _metrics.observe_shard_chunk(
                    "pool", members=shard.n_members, wall_s=wall_s
                )
                _metrics.count_shard_dispatch(
                    "winner_backup" if attempt else "winner_primary"
                )
                if tracer is not None and shard.index in dispatch_ctx:
                    tracer.emit_span(
                        "shard.dispatch",
                        dispatch_ctx[shard.index],
                        wall_s=wall_s,
                        meta={
                            "start_member": shard.start,
                            "members": shard.n_members,
                            "winner": "backup" if attempt else "primary",
                            "speculated": shard.index in backups,
                        },
                    )
                if attempt and rec is not None:
                    rec.counter("shard.backup_wins", 1)
                sibling = next(
                    (
                        f
                        for f, (s, _) in outstanding.items()
                        if s.index == shard.index
                    ),
                    None,
                )
                if sibling is not None:
                    _, lost_attempt = outstanding.pop(sibling)
                    if not sibling.cancel():
                        # Already running (the straggler): abandon it
                        # and terminate its process at shutdown.
                        abandoned = True
                    if tracer is not None and shard.index in dispatch_ctx:
                        # The loser may never get to write its own span
                        # (its process is terminated at shutdown), so
                        # the scheduler records the losing dispatch as a
                        # sibling of the winner's ``shard.worker`` span.
                        tracer.emit_span(
                            "shard.worker.lost",
                            dispatch_ctx[shard.index].child(),
                            wall_s=time.monotonic()
                            - dispatched_at[sibling],
                            meta={
                                "attempt": lost_attempt,
                                "start_member": shard.start,
                                "members": shard.n_members,
                            },
                            error="lost the dispatch race; cancelled",
                        )
                    _metrics.count_shard_dispatch("cancelled")
                    if rec is not None:
                        rec.counter("shard.cancelled", 1)
            if timeout is not None:
                now = time.monotonic()
                for future, (shard, attempt) in list(outstanding.items()):
                    if (
                        attempt == 0
                        and shard.index not in backups
                        and shard.index not in results_by_shard
                        and now - dispatched_at[future] >= timeout
                    ):
                        backup = submit(pool, shard, attempt=1)
                        outstanding[backup] = (shard, 1)
                        dispatched_at[backup] = now
                        backups[shard.index] = backup
                        if rec is not None:
                            rec.counter("shard.speculative", 1)
    finally:
        if abandoned or outstanding:
            # A straggling loser (or an error-path abort) would block a
            # clean shutdown; every wanted result is already collected,
            # so terminate the pool's processes outright first (the
            # parallel_map idiom).
            for process in (pool._processes or {}).values():
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    for shard in plan.shards:
        parts.append(results_by_shard[shard.index])
    return parts


@traced(name="shard.characterize_store")
def characterize_store(
    store,
    *,
    memory_budget_mb: float | None = None,
    chunk_size: int | None = None,
    tol: float = DEFAULT_TOL,
    max_iterations: int = 100_000,
    tma_fallback: str = "limit",
    batched: bool = True,
    n_jobs: int | None = None,
    policy: str = "raise",
    budget=None,
    fault_plan=None,
    backend=None,
    precision: str | None = None,
):
    """Characterize a disk-backed ensemble with bounded peak memory.

    Parameters
    ----------
    store : StackStore or path
        The on-disk ``(N, T, M)`` stack (see :mod:`repro.shard.store`).
    memory_budget_mb : float, optional
        Peak working-set budget in MiB; the planner picks the largest
        chunk that fits (mutually exclusive with ``chunk_size``).
    chunk_size : int, optional
        Fix the members-per-chunk directly.
    n_jobs : int, optional
        1 (default) streams shards serially; >= 2 schedules them over a
        process pool whose workers memory-map their own slices.
    budget : repro.robust.Budget, optional
        Robust-policy budgets.  ``deadline_s`` bounds the whole store
        run (chunks receive the remainder); in pool mode
        ``member_timeout_s`` becomes the per-shard straggler timeout
        that triggers speculative re-dispatch.
    fault_plan : repro.robust.FaultPlan, optional
        Chaos injection.  Data faults match the in-memory path exactly
        (absolute member indices); ``stall`` faults stall the shard's
        primary dispatch (see the module docstring).
    tol, max_iterations, tma_fallback, batched, policy, backend, precision
        Exactly as :func:`repro.batch.characterize_ensemble`.

    Returns
    -------
    EnsembleCharacterization or RobustEnsembleCharacterization
        Bit-identical to ``characterize_ensemble(store.memmap()[:])``
        with the same options — columns in member order, quarantine
        report carrying absolute member indices.

    Examples
    --------
    >>> import numpy as np, tempfile, os
    >>> from repro.shard import write_store
    >>> path = os.path.join(tempfile.mkdtemp(), "demo")
    >>> _ = write_store(path, np.ones((6, 2, 2)) + np.arange(6.0)[:, None, None])
    >>> result = characterize_store(path, chunk_size=4)
    >>> len(result), bool(result.converged.all())
    (6, True)
    """
    if not isinstance(store, StackStore):
        store = StackStore(store)
    if policy not in ("raise", "quarantine", "repair"):
        raise MatrixValueError(
            f"policy must be 'raise', 'quarantine' or 'repair', got "
            f"{policy!r}"
        )
    if budget is not None and policy == "raise":
        raise MatrixValueError(
            "budget requires policy='quarantine' or policy='repair'"
        )
    memory_budget_bytes = None
    if memory_budget_mb is not None:
        if not isinstance(memory_budget_mb, (int, float)) or (
            isinstance(memory_budget_mb, bool) or memory_budget_mb <= 0
        ):
            raise MatrixValueError(
                f"memory_budget_mb must be a positive number, got "
                f"{memory_budget_mb!r}"
            )
        memory_budget_bytes = int(memory_budget_mb * 2**20)

    plan = plan_shards(
        store.n_members,
        store.n_tasks,
        store.n_machines,
        memory_budget_bytes=memory_budget_bytes,
        chunk_size=chunk_size,
    )
    jobs = resolve_n_jobs(n_jobs)
    data_specs, stall_specs = _split_faults(fault_plan, store.n_members)
    shard_stalls: dict[int, float] = {}
    for spec in stall_specs:
        for shard in plan.shards:
            if shard.start <= spec.member < shard.stop:
                shard_stalls[shard.index] = max(
                    shard_stalls.get(shard.index, 0.0), spec.stall_s
                )
                break
    deadline = budget.start() if budget is not None else None
    if deadline is None:
        from ..robust.budget import Deadline

        deadline = Deadline(None)

    rec = current_recorder()
    if rec is not None:
        rec.counter("shard.shards", len(plan.shards))
        rec.counter("shard.members", plan.n_members)

    kwargs = _chunk_kwargs(
        tol=tol,
        max_iterations=max_iterations,
        tma_fallback=tma_fallback,
        batched=batched,
        policy=policy,
        backend=backend,
        precision=precision,
    )
    if jobs == 1 or len(plan.shards) == 1:
        parts = _run_serial(
            store, plan, data_specs, shard_stalls, budget, deadline, kwargs
        )
    else:
        parts = _run_pool(
            store, plan, jobs, data_specs, shard_stalls, budget, deadline,
            kwargs,
        )
    return merge_characterizations(parts)
