"""Chunked execution planning under a peak-memory budget.

The batched kernels materialize several float64 copies of whatever
chunk they are handed (the input copy, the standard form, the scaling
vectors and the stacked SVD workspace).  :func:`plan_shards` inverts
that: given a memory budget it picks the largest chunk whose estimated
working set stays inside it, then tiles the ensemble into consecutive
``[start, stop)`` shards.  The property harness in
``tests/shard/test_planner.py`` pins the two planner invariants:

* the shards partition ``range(n_members)`` — every member is covered
  exactly once, in order, for any (N, chunk, budget);
* ``estimated_peak_bytes <= memory_budget_bytes`` whenever the budget
  admits at least one member (a single member is the planning floor —
  no chunking scheme can stream less than one slice at a time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MatrixValueError

__all__ = [
    "WORKING_SET_FACTOR",
    "DEFAULT_CHUNK_SIZE",
    "Shard",
    "ShardPlan",
    "plan_shards",
]

#: Peak-memory multiplier: the number of float64 copies of one chunk
#: the streamed pipeline is budgeted to hold at once.  Measured upper
#: bound for the fused standardize+SVD pass (input chunk, standard
#: form, float32 fast-path copies, iteration temporaries, stacked SVD
#: workspace, measure columns) with headroom; the memory-ceiling tests
#: in ``tests/shard/`` assert real ``tracemalloc`` peaks stay under
#: ``budget`` with this factor in place.
WORKING_SET_FACTOR = 16

#: Chunk size when neither a budget nor an explicit chunk is given:
#: large enough to amortize per-chunk Python overhead, small enough
#: that an (8, 8) float64 ensemble streams in ~8 MB working sets.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the ensemble: members ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise MatrixValueError(
                f"shard [{self.start}, {self.stop}) is empty or negative"
            )

    @property
    def n_members(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """A chunked execution plan over one ``(N, T, M)`` ensemble.

    Attributes
    ----------
    n_members, n_tasks, n_machines : int
        Ensemble geometry the plan covers.
    chunk_size : int
        Members per full shard (the last shard may be smaller).
    memory_budget_bytes : int or None
        The budget the chunk size was derived from (None when the
        caller fixed ``chunk_size`` directly or took the default).
    shards : tuple of Shard
        Consecutive, non-overlapping, exactly covering the ensemble.
    """

    n_members: int
    n_tasks: int
    n_machines: int
    chunk_size: int
    memory_budget_bytes: int | None
    shards: tuple[Shard, ...]

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def member_nbytes(self) -> int:
        """Heap bytes of one float64 member in flight."""
        return self.n_tasks * self.n_machines * 8

    @property
    def estimated_peak_bytes(self) -> int:
        """Budgeted peak working set of streaming one full chunk."""
        return self.chunk_size * self.member_nbytes * WORKING_SET_FACTOR

    def summary(self) -> str:
        """One-line operator digest."""
        budget = (
            f"{self.memory_budget_bytes / 2**20:.0f} MB budget"
            if self.memory_budget_bytes is not None
            else "no budget"
        )
        return (
            f"{len(self.shards)} shard(s) x {self.chunk_size} member(s) "
            f"over {self.n_members} ({budget}, est. peak "
            f"{self.estimated_peak_bytes / 2**20:.1f} MB)"
        )


def plan_shards(
    n_members: int,
    n_tasks: int,
    n_machines: int,
    *,
    memory_budget_bytes: int | None = None,
    chunk_size: int | None = None,
) -> ShardPlan:
    """Tile an ensemble into consecutive shards under a memory budget.

    Parameters
    ----------
    n_members, n_tasks, n_machines : int
        Ensemble geometry.
    memory_budget_bytes : int, optional
        Peak working-set budget.  The chunk size is the largest count
        whose ``chunk * T * M * 8 * WORKING_SET_FACTOR`` fits, floored
        at one member per chunk (the budget is then reported as
        best-effort by :attr:`ShardPlan.estimated_peak_bytes`).
    chunk_size : int, optional
        Fix the chunk size directly (mutually exclusive with the
        budget).

    Examples
    --------
    >>> plan = plan_shards(10, 8, 8, chunk_size=4)
    >>> [(s.start, s.stop) for s in plan.shards]
    [(0, 4), (4, 8), (8, 10)]
    >>> plan_shards(10**6, 8, 8, memory_budget_bytes=64 * 2**20).chunk_size
    8192
    """
    for name, value in (
        ("n_members", n_members),
        ("n_tasks", n_tasks),
        ("n_machines", n_machines),
    ):
        if not isinstance(value, (int, np.integer)) or isinstance(
            value, bool
        ) or value < 1:
            raise MatrixValueError(
                f"{name} must be a positive int, got {value!r}"
            )
    n_members = int(n_members)
    member_nbytes = int(n_tasks) * int(n_machines) * 8

    if chunk_size is not None and memory_budget_bytes is not None:
        raise MatrixValueError(
            "pass either memory_budget_bytes or chunk_size, not both "
            "(an explicit chunk overrides any budget derivation)"
        )
    if chunk_size is not None:
        if not isinstance(chunk_size, (int, np.integer)) or isinstance(
            chunk_size, bool
        ) or chunk_size < 1:
            raise MatrixValueError(
                f"chunk_size must be a positive int, got {chunk_size!r}"
            )
        chunk = int(chunk_size)
    elif memory_budget_bytes is not None:
        if not isinstance(
            memory_budget_bytes, (int, np.integer)
        ) or isinstance(memory_budget_bytes, bool) or memory_budget_bytes < 1:
            raise MatrixValueError(
                f"memory_budget_bytes must be a positive int, got "
                f"{memory_budget_bytes!r}"
            )
        chunk = max(
            1, int(memory_budget_bytes) // (member_nbytes * WORKING_SET_FACTOR)
        )
    else:
        chunk = DEFAULT_CHUNK_SIZE
    chunk = min(chunk, n_members)

    shards = tuple(
        Shard(index=i, start=start, stop=min(start + chunk, n_members))
        for i, start in enumerate(range(0, n_members, chunk))
    )
    return ShardPlan(
        n_members=n_members,
        n_tasks=int(n_tasks),
        n_machines=int(n_machines),
        chunk_size=chunk,
        memory_budget_bytes=(
            int(memory_budget_bytes) if memory_budget_bytes is not None else None
        ),
        shards=shards,
    )
