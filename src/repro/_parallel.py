"""Optional process-level parallelism for embarrassingly parallel studies.

The numerical kernels are vectorized numpy and don't benefit from
Python-level threading, but the *study* layers (sensitivity trials,
correlation ensembles, generator footprints) are embarrassingly
parallel across independently seeded work items.  ``parallel_map`` runs
such a function over its items with an optional process pool:

* ``n_jobs=1`` (default) — plain loop, zero overhead, fully
  deterministic ordering;
* ``n_jobs>1`` — ``concurrent.futures.ProcessPoolExecutor``; results
  come back in submission order, so determinism is preserved as long
  as the per-item work is seeded per item (every study in this library
  derives one child seed per item up front).

Fault tolerance (used by :mod:`repro.robust`): ``return_failures=True``
captures per-item exceptions as :class:`WorkerFailure` records instead
of aborting the whole map, and ``timeout_s`` bounds the wait on each
item so a straggling worker cannot hang the pipeline — its slot is
reported as a timed-out :class:`WorkerFailure` and the stalled process
is terminated at shutdown.

The callable and its items must be picklable (module-level functions
and plain data), which is why the study workers live at module scope.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from .exceptions import MatrixValueError

__all__ = ["WorkerFailure", "parallel_map", "resolve_n_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks submitted per worker.  One chunk per worker minimizes pickling
#: round-trips but loses load balancing when per-item cost varies; a few
#: chunks per worker keeps both overheads small.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkerFailure:
    """One failed map item: its position and the exception that killed it.

    ``timed_out`` distinguishes a straggler abandoned at ``timeout_s``
    (its ``error`` is a synthesized :class:`TimeoutError`) from a worker
    that raised.
    """

    index: int
    error: BaseException
    timed_out: bool = False

    def __repr__(self) -> str:  # keep tracebacks readable in reports
        kind = "timeout" if self.timed_out else type(self.error).__name__
        return f"WorkerFailure(index={self.index}, {kind}: {self.error})"


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` argument (None/1 = serial, -1 = all CPUs)."""
    import os

    if n_jobs is None:
        return 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise MatrixValueError(f"n_jobs must be an int, got {n_jobs!r}")
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise MatrixValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_jobs: int | None = None,
    timeout_s: float | None = None,
    return_failures: bool = False,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results are returned in item order regardless of worker scheduling.

    Parameters
    ----------
    fn, items, n_jobs
        As before: ``n_jobs=None``/1 runs a plain deterministic loop,
        larger values (or -1) use a process pool.
    timeout_s : float or None
        Per-item wall-clock bound.  Requires a process pool
        (``n_jobs >= 2``): an in-process call cannot be preempted, so a
        serial map with a timeout raises
        :class:`~repro.exceptions.MatrixValueError` immediately rather
        than silently not enforcing the bound.  An item whose result is
        not available within ``timeout_s`` of being waited on becomes a
        timed-out :class:`WorkerFailure`; other items complete normally
        and the stalled process is terminated at shutdown so the call
        never hangs.
    return_failures : bool
        When True, an item whose worker raises (or times out) yields a
        :class:`WorkerFailure` in its result slot instead of aborting
        the whole map.  When False (default), worker exceptions
        propagate and a timeout raises :class:`TimeoutError`.

    Examples
    --------
    >>> parallel_map(abs, [-2, 3, -1])
    [2, 3, 1]
    >>> failures = parallel_map(
    ...     int, ["1", "x"], return_failures=True)
    >>> failures[0], type(failures[1]).__name__
    (1, 'WorkerFailure')
    """
    jobs = resolve_n_jobs(n_jobs)
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
            raise MatrixValueError(
                f"timeout_s must be a positive number or None, got "
                f"{timeout_s!r}"
            )
        if jobs == 1:
            raise MatrixValueError(
                "timeout_s requires a process pool (n_jobs >= 2): a "
                "serial in-process call cannot be preempted"
            )
    materialized: Sequence[T] = list(items)
    if jobs == 1 or (len(materialized) <= 1 and timeout_s is None):
        if not return_failures:
            return [fn(item) for item in materialized]
        results: list[R] = []
        for i, item in enumerate(materialized):
            try:
                results.append(fn(item))
            except Exception as exc:
                results.append(WorkerFailure(index=i, error=exc))
        return results
    workers = min(jobs, max(1, len(materialized)))
    if timeout_s is None and not return_failures:
        # Fast path: chunked submission, one pickle round-trip per chunk
        # instead of per item, so large ensembles don't drown in IPC
        # overhead.
        chunksize = -(-len(materialized) // (workers * _CHUNKS_PER_WORKER))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, materialized, chunksize=chunksize))
    # Fault-tolerant path: one future per item so a single straggler or
    # crash is isolated to its own result slot.
    pool = ProcessPoolExecutor(max_workers=workers)
    results = []
    any_timeout = False
    try:
        futures = [pool.submit(fn, item) for item in materialized]
        for i, future in enumerate(futures):
            try:
                # In 3.10 concurrent.futures.TimeoutError is distinct
                # from the builtin; catch both.
                results.append(future.result(timeout=timeout_s))
            except (_FuturesTimeout, TimeoutError):
                any_timeout = True
                error = TimeoutError(
                    f"worker for item {i} exceeded timeout_s={timeout_s:g}"
                )
                if not return_failures:
                    raise error from None
                results.append(
                    WorkerFailure(index=i, error=error, timed_out=True)
                )
            except Exception as exc:
                if not return_failures:
                    raise
                results.append(WorkerFailure(index=i, error=exc))
    finally:
        if any_timeout:
            # A stalled worker would block a clean shutdown; kill the
            # pool's processes outright first (all healthy futures have
            # already been collected above).  The join is then instant,
            # and waiting for it lets the executor close its wakeup
            # pipes cleanly instead of tripping the interpreter's
            # atexit hook on a dead pool.
            for process in (pool._processes or {}).values():
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)
    return results
