"""Optional process-level parallelism for embarrassingly parallel studies.

The numerical kernels are vectorized numpy and don't benefit from
Python-level threading, but the *study* layers (sensitivity trials,
correlation ensembles, generator footprints) are embarrassingly
parallel across independently seeded work items.  ``parallel_map`` runs
such a function over its items with an optional process pool:

* ``n_jobs=1`` (default) — plain loop, zero overhead, fully
  deterministic ordering;
* ``n_jobs>1`` — ``concurrent.futures.ProcessPoolExecutor``; results
  come back in submission order, so determinism is preserved as long
  as the per-item work is seeded per item (every study in this library
  derives one child seed per item up front).

The callable and its items must be picklable (module-level functions
and plain data), which is why the study workers live at module scope.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from .exceptions import MatrixValueError

__all__ = ["parallel_map", "resolve_n_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks submitted per worker.  One chunk per worker minimizes pickling
#: round-trips but loses load balancing when per-item cost varies; a few
#: chunks per worker keeps both overheads small.
_CHUNKS_PER_WORKER = 4


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` argument (None/1 = serial, -1 = all CPUs)."""
    import os

    if n_jobs is None:
        return 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise MatrixValueError(f"n_jobs must be an int, got {n_jobs!r}")
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise MatrixValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_jobs: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results are returned in item order regardless of worker scheduling.

    Examples
    --------
    >>> parallel_map(abs, [-2, 3, -1])
    [2, 3, 1]
    """
    jobs = resolve_n_jobs(n_jobs)
    materialized: Sequence[T] = list(items)
    if jobs == 1 or len(materialized) <= 1:
        return [fn(item) for item in materialized]
    workers = min(jobs, len(materialized))
    # Chunked submission: one pickle round-trip per chunk instead of
    # per item, so large ensembles don't drown in IPC overhead.
    chunksize = -(-len(materialized) // (workers * _CHUNKS_PER_WORKER))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, materialized, chunksize=chunksize))
