"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing the failure modes that the paper calls out
explicitly (non-convergent normalization, non-normalizable structure,
malformed environment matrices).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MatrixShapeError",
    "MatrixValueError",
    "EmptyRowColumnError",
    "WeightError",
    "ConvergenceError",
    "NotNormalizableError",
    "DatasetError",
    "SchedulingError",
    "GenerationError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class MatrixShapeError(ReproError, ValueError):
    """An environment matrix has an invalid shape (empty, non-2D, ...)."""


class MatrixValueError(ReproError, ValueError):
    """An environment matrix contains invalid values (negative, NaN, ...)."""


class EmptyRowColumnError(MatrixValueError):
    """An ECS matrix has an all-zero row or column.

    The paper (Section II-B) forbids this: an all-zero column is a machine
    that can execute no task type, an all-zero row is a task type that no
    machine can execute.  Neither describes a usable HC environment and
    both break every measure (row/column sums of zero).
    """


class WeightError(ReproError, ValueError):
    """A task or machine weight vector is invalid (wrong length, <= 0)."""


class ConvergenceError(ReproError, RuntimeError):
    """Iterative normalization failed to converge within the allowed
    number of iterations.

    Section VI of the paper shows that matrices with zero entries may not
    be normalizable at all; :mod:`repro.structure` can diagnose this
    before (or after) the iteration is attempted.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        #: Number of iterations performed before giving up.
        self.iterations = iterations
        #: Final max row/column-sum residual when the iteration stopped.
        self.residual = residual


class NotNormalizableError(ReproError, ValueError):
    """The matrix provably admits no equal-row-sum/equal-column-sum
    scaling (it is decomposable in the Marshall–Olkin sense and fails the
    pattern test), so a standard ECS matrix does not exist."""


class DatasetError(ReproError, KeyError):
    """A named dataset, machine, or task type was not found."""


class SchedulingError(ReproError, ValueError):
    """A mapping-heuristic input is invalid (e.g. unknown heuristic name,
    or a task that no machine can execute)."""


class GenerationError(ReproError, ValueError):
    """An ETC-matrix generator was given unsatisfiable parameters."""
