"""The pure-numpy reference backend.

These are the library's original inner loops, extracted verbatim from
``repro.normalize.sinkhorn`` / ``repro.batch.sinkhorn`` — one iteration
is two broadcast sums and two broadcast multiplies, with a per-slice
active mask on the batched path so every slice's iterate sequence is
identical to a scalar run on that matrix alone.  Every other backend is
tested against this one (``tolerance = 0.0``: the reference defines
correctness).
"""

from __future__ import annotations

import time

import numpy as np

from .base import KernelBackendBase

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackendBase):
    """Vectorized numpy loops (the library's historical kernels)."""

    name = "numpy"
    tolerance = 0.0

    def sinkhorn_core(
        self,
        work,
        row_targets,
        col_targets,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        history,
        t_end,
    ):
        iterations = 0
        converged = history[-1] <= tol
        timed_out = False
        while not converged and iterations < max_iterations:
            if t_end is not None and time.monotonic() >= t_end:
                timed_out = True
                break
            # Column pass (eq. 9, odd k): scale columns to their
            # targets.  The accumulated diagonal scales can overflow
            # for non-normalizable zero patterns (they genuinely
            # diverge while the matrix iterates stay bounded); that is
            # reported through ConvergenceError, not a warning.
            factors = col_targets / work.sum(axis=0)
            work *= factors[None, :]
            with np.errstate(over="ignore"):
                col_scale *= factors
            # Row pass (eq. 9, even k): scale rows to their targets.
            factors = row_targets / work.sum(axis=1)
            work *= factors[:, None]
            with np.errstate(over="ignore"):
                row_scale *= factors
            iterations += 1
            residual = float(
                max(
                    np.abs(work.sum(axis=1) - row_targets).max(),
                    np.abs(work.sum(axis=0) - col_targets).max(),
                )
            )
            history.append(residual)
            converged = residual <= tol
        return iterations, converged, timed_out

    def sinkhorn_core_batched(
        self,
        work,
        row_target,
        col_target,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        histories,
        iterations,
        residual,
        converged,
        active,
        t_end,
        on_progress=None,
    ):
        iterations_run = 0
        timed_out = False
        while active.any() and iterations_run < max_iterations:
            if t_end is not None and time.monotonic() >= t_end:
                timed_out = True
                break
            idx = np.nonzero(active)[0]
            if on_progress is not None:
                on_progress(idx.size)
            sub = work[idx]
            # Column pass (eq. 9, odd k).  As in the scalar core, the
            # accumulated diagonal scales can overflow for
            # non-normalizable zero patterns while the matrix iterates
            # stay bounded.
            factors = col_target / sub.sum(axis=1)
            sub *= factors[:, None, :]
            with np.errstate(over="ignore"):
                col_scale[idx] *= factors
            # Row pass (eq. 9, even k).
            factors = row_target / sub.sum(axis=2)
            sub *= factors[:, :, None]
            with np.errstate(over="ignore"):
                row_scale[idx] *= factors
            work[idx] = sub
            iterations_run += 1
            iterations[idx] += 1
            res = np.maximum(
                np.abs(sub.sum(axis=2) - row_target).max(axis=1),
                np.abs(sub.sum(axis=1) - col_target).max(axis=1),
            )
            residual[idx] = res
            for pos, i in enumerate(idx):
                histories[i].append(float(res[pos]))
            done = res <= tol
            converged[idx] = done
            active[idx] = ~done
        return iterations_run, timed_out
