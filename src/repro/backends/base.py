"""The :class:`KernelBackend` protocol and the shared dispatch drivers.

A backend supplies the four *inner loops* the library's kernels are
built from — scalar Sinkhorn, batched Sinkhorn, singular values, and a
fused normalize-and-measure pass — while everything around those loops
(input validation, warm-start application, the float32 fast path,
observability spans/metrics, error messages, result objects) lives in
the public entry points and the drivers here, shared by every backend.

The cores operate **in place** on caller-owned state so a backend never
decides result semantics:

* ``sinkhorn_core(work, row_targets, col_targets, ...)`` mutates
  ``work`` and the ``row_scale``/``col_scale`` accumulators, appends
  one residual per full (column pass + row pass) iteration to
  ``history`` (whose last entry is the residual of ``work`` at entry),
  and returns ``(iterations, converged, timed_out)``.  Targets are
  vectors, so the same core serves ``sinkhorn_knopp`` (constant
  targets) and ``scale_to_margins`` (prescribed margins).
* ``sinkhorn_core_batched(...)`` is the ``(N, T, M)`` counterpart; it
  additionally maintains the per-slice ``iterations``/``residual``/
  ``converged``/``active`` arrays and per-slice ``histories``, and
  returns ``(iterations_run, timed_out)``.

Precision
---------
``precision="float32"`` runs a coarse float32 phase to
``max(tol, 1e-5)``, then **verifies** the float32-derived scaling
vectors by applying them to the original float64 matrix and measuring
the residual in float64, and finally polishes in float64 down to the
true tolerance.  Non-finite or non-positive float32 scales discard the
coarse phase entirely and fall back to a pure float64 run, so the
returned result is always float64-verified regardless of backend.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import check_choice
from ..exceptions import MatrixValueError

__all__ = [
    "KernelBackend",
    "KernelBackendBase",
    "PRECISIONS",
    "check_precision",
    "coerce_warm_start",
    "coerce_warm_start_batched",
    "run_sinkhorn",
    "run_sinkhorn_batched",
]

#: Accepted values of the ``precision=`` kwarg (``None`` means the
#: default, ``"float64"``).
PRECISIONS = ("float64", "float32")

#: The float32 coarse phase never chases a tolerance below this — the
#: remaining gap is closed by the float64 polish phase.
F32_COARSE_TOL = 1e-5


@runtime_checkable
class KernelBackend(Protocol):
    """Structural protocol every kernel backend satisfies.

    ``name`` is the registry/metrics label; ``tolerance`` is the
    documented worst-case disagreement of the backend against the
    pure-numpy reference on convergent float64 inputs (0.0 for the
    reference itself), asserted by the differential harness in
    ``tests/backends/``.
    """

    @property
    def name(self) -> str: ...

    @property
    def tolerance(self) -> float: ...

    def sinkhorn_core(
        self,
        work,
        row_targets,
        col_targets,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        history,
        t_end,
    ): ...

    def sinkhorn_core_batched(
        self,
        work,
        row_target,
        col_target,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        histories,
        iterations,
        residual,
        converged,
        active,
        t_end,
        on_progress,
    ): ...

    def svd_values(self, matrix): ...

    def svd_values_batched(self, stack): ...

    def fused_standard_measures(
        self, stack, *, tol, max_iterations, deadline_s, warm_start, precision
    ): ...


def check_precision(precision) -> str:
    """Validate the ``precision=`` kwarg (``None`` → ``"float64"``)."""
    if precision is None:
        return "float64"
    check_choice(precision, name="precision", choices=PRECISIONS)
    return precision


def _warm_vectors(warm_start):
    """Extract ``(row_scale, col_scale)`` from a warm-start argument.

    Accepts any :class:`~repro.normalize.ScalingOutcome`-shaped object
    exposing ``row_scale``/``col_scale`` (e.g. a previous
    ``NormalizationResult``, ``StandardFormResult`` or
    ``BatchNormalizationResult``) or an explicit 2-sequence of vectors.
    """
    if hasattr(warm_start, "row_scale") and hasattr(warm_start, "col_scale"):
        return warm_start.row_scale, warm_start.col_scale
    try:
        row, col = warm_start
    except (TypeError, ValueError):
        raise MatrixValueError(
            "warm_start must be a previous scaling result (with "
            ".row_scale/.col_scale) or a (row_scale, col_scale) pair, "
            f"got {warm_start!r}"
        ) from None
    return row, col


def _check_warm(vec: np.ndarray, what: str) -> np.ndarray:
    if not np.isfinite(vec).all() or (vec <= 0).any():
        raise MatrixValueError(
            f"warm_start {what} must be strictly positive and finite"
        )
    return vec


def coerce_warm_start(
    warm_start, n_rows: int, n_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(row_scale, col_scale)`` float64 vectors for one
    ``(n_rows, n_cols)`` matrix."""
    row, col = _warm_vectors(warm_start)
    row = np.asarray(row, dtype=np.float64).reshape(-1)
    col = np.asarray(col, dtype=np.float64).reshape(-1)
    if row.shape[0] != n_rows or col.shape[0] != n_cols:
        raise MatrixValueError(
            "warm_start scaling vectors must match the matrix shape "
            f"({n_rows}, {n_cols}), got lengths {row.shape[0]} and "
            f"{col.shape[0]}"
        )
    return _check_warm(row, "row_scale"), _check_warm(col, "col_scale")


def coerce_warm_start_batched(
    warm_start, n_slices: int, n_rows: int, n_cols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``((N, T), (N, M))`` float64 scale arrays for a stack.

    A single ``(T,)``/``(M,)`` pair (e.g. from a scalar run on the
    unperturbed base matrix) broadcasts to every slice; per-slice
    ``(N, T)``/``(N, M)`` arrays are used as-is.
    """
    row, col = _warm_vectors(warm_start)
    row = np.asarray(row, dtype=np.float64)
    col = np.asarray(col, dtype=np.float64)
    if row.ndim == 1 and col.ndim == 1:
        row = np.broadcast_to(row, (n_slices, row.shape[0])).copy()
        col = np.broadcast_to(col, (n_slices, col.shape[0])).copy()
    if row.shape != (n_slices, n_rows) or col.shape != (n_slices, n_cols):
        raise MatrixValueError(
            "warm_start scaling arrays must have shape "
            f"({n_slices}, {n_rows}) and ({n_slices}, {n_cols}) — or be "
            f"a single ({n_rows},)/({n_cols},) pair broadcast to every "
            f"slice — got {row.shape} and {col.shape}"
        )
    return _check_warm(row, "row_scale"), _check_warm(col, "col_scale")


def run_sinkhorn(
    backend,
    work,
    row_targets,
    col_targets,
    *,
    tol,
    max_iterations,
    row_scale,
    col_scale,
    history,
    t_end,
    precision="float64",
):
    """Precision-dispatching scalar driver.

    Returns ``(iterations, converged, timed_out, precision_outcome)``
    where ``precision_outcome`` is ``None`` under float64 and
    ``"verified"``/``"fallback"`` under float32.
    """
    if precision == "float64":
        iterations, converged, timed_out = backend.sinkhorn_core(
            work,
            row_targets,
            col_targets,
            tol=tol,
            max_iterations=max_iterations,
            row_scale=row_scale,
            col_scale=col_scale,
            history=history,
            t_end=t_end,
        )
        return iterations, converged, timed_out, None

    coarse_tol = max(tol, F32_COARSE_TOL)
    outcome = "verified"
    coarse_iterations = 0
    if history[-1] > coarse_tol:
        # Over/underflow in the float32 phase is expected on extreme
        # inputs and handled by the fallback below, so the coarse pass
        # runs silenced.
        with np.errstate(all="ignore"):
            work32 = work.astype(np.float32)
            rs32 = np.ones(work.shape[0], dtype=np.float32)
            cs32 = np.ones(work.shape[1], dtype=np.float32)
            h32 = [history[-1]]
            coarse_iterations, _, coarse_timed_out = backend.sinkhorn_core(
                work32,
                row_targets.astype(np.float32),
                col_targets.astype(np.float32),
                tol=coarse_tol,
                max_iterations=max_iterations,
                row_scale=rs32,
                col_scale=cs32,
                history=h32,
                t_end=t_end,
            )
        rs64 = rs32.astype(np.float64)
        cs64 = cs32.astype(np.float64)
        usable = (
            np.isfinite(rs64).all()
            and np.isfinite(cs64).all()
            and (rs64 > 0).all()
            and (cs64 > 0).all()
        )
        if usable and coarse_iterations:
            # Verify in float64: apply the float32-derived scales to
            # the pristine float64 iterate and measure the residual at
            # full precision before accepting the coarse phase.
            candidate = rs64[:, None] * work * cs64[None, :]
            verified = float(
                max(
                    np.abs(candidate.sum(axis=1) - row_targets).max(),
                    np.abs(candidate.sum(axis=0) - col_targets).max(),
                )
            )
            work[:] = candidate
            row_scale *= rs64
            col_scale *= cs64
            history.extend(h32[1:-1])
            history.append(verified)
            if coarse_timed_out:
                return coarse_iterations, verified <= tol, True, outcome
        elif not usable:
            # float32 over/underflowed: discard the coarse phase and
            # run pure float64 from the untouched entry state.
            outcome = "fallback"
            coarse_iterations = 0
    if history[-1] <= tol:
        return coarse_iterations, True, False, outcome
    polish_iterations, converged, timed_out = backend.sinkhorn_core(
        work,
        row_targets,
        col_targets,
        tol=tol,
        max_iterations=max(max_iterations - coarse_iterations, 0),
        row_scale=row_scale,
        col_scale=col_scale,
        history=history,
        t_end=t_end,
    )
    return coarse_iterations + polish_iterations, converged, timed_out, outcome


def run_sinkhorn_batched(
    backend,
    work,
    row_target,
    col_target,
    *,
    tol,
    max_iterations,
    row_scale,
    col_scale,
    histories,
    iterations,
    residual,
    converged,
    active,
    t_end,
    precision="float64",
    on_progress=None,
):
    """Precision-dispatching batched driver (same return convention as
    :func:`run_sinkhorn`, with ``iterations_run`` in place of the
    per-call iteration count)."""
    if precision == "float64":
        iterations_run, timed_out = backend.sinkhorn_core_batched(
            work,
            row_target,
            col_target,
            tol=tol,
            max_iterations=max_iterations,
            row_scale=row_scale,
            col_scale=col_scale,
            histories=histories,
            iterations=iterations,
            residual=residual,
            converged=converged,
            active=active,
            t_end=t_end,
            on_progress=on_progress,
        )
        return iterations_run, timed_out, None

    coarse_tol = max(tol, F32_COARSE_TOL)
    outcome = "verified"
    entry_active = active.copy()
    entry_residual = residual.copy()
    entry_lengths = [len(h) for h in histories]
    entry_iterations = iterations.copy()
    n_slices, n_rows, n_cols = work.shape
    coarse_run = 0
    coarse_timed_out = False
    if entry_active.any():
        # As in the scalar driver: float32 over/underflow is expected
        # on extreme inputs and handled by the fallback below.
        with np.errstate(all="ignore"):
            work32 = work.astype(np.float32)
            rs32 = np.ones((n_slices, n_rows), dtype=np.float32)
            cs32 = np.ones((n_slices, n_cols), dtype=np.float32)
            coarse_active = entry_active & (residual > coarse_tol)
            coarse_run, coarse_timed_out = backend.sinkhorn_core_batched(
                work32,
                np.float32(row_target),
                np.float32(col_target),
                tol=coarse_tol,
                max_iterations=max_iterations,
                row_scale=rs32,
                col_scale=cs32,
                histories=histories,
                iterations=iterations,
                residual=residual,
                converged=converged,
                active=coarse_active,
                t_end=t_end,
                on_progress=on_progress,
            )
        rs64 = rs32.astype(np.float64)
        cs64 = cs32.astype(np.float64)
        usable = (
            np.isfinite(rs64).all()
            and np.isfinite(cs64).all()
            and (rs64 > 0).all()
            and (cs64 > 0).all()
        )
        if usable:
            # Slices that never iterated keep unit relative scales, so
            # the broadcast application below is a bit-exact no-op for
            # them.  Verification happens in float64 on the pristine
            # entry iterates.
            work[:] = rs64[:, :, None] * work * cs64[:, None, :]
            row_scale *= rs64
            col_scale *= cs64
            verified = np.maximum(
                np.abs(work.sum(axis=2) - row_target).max(axis=1),
                np.abs(work.sum(axis=1) - col_target).max(axis=1),
            )
            residual[entry_active] = verified[entry_active]
            ran = iterations > entry_iterations
            for i in np.nonzero(entry_active & ran)[0]:
                histories[i][-1] = float(verified[i])
        else:
            # Batch-level fallback: one slice overflowing float32
            # discards the whole coarse phase (cheap, and keeps every
            # slice's history coherent).
            outcome = "fallback"
            residual[:] = entry_residual
            iterations[:] = entry_iterations
            for i, length in enumerate(entry_lengths):
                del histories[i][length:]
        done = residual <= tol
        converged[:] = np.where(entry_active, done, converged)
        active[:] = entry_active & ~done
        if coarse_timed_out and usable:
            return coarse_run, True, outcome
    if not active.any():
        return coarse_run, False, outcome
    polish_run, timed_out = backend.sinkhorn_core_batched(
        work,
        row_target,
        col_target,
        tol=tol,
        max_iterations=max_iterations,
        row_scale=row_scale,
        col_scale=col_scale,
        histories=histories,
        iterations=iterations,
        residual=residual,
        converged=converged,
        active=active,
        t_end=t_end,
        on_progress=on_progress,
    )
    return coarse_run + polish_run, timed_out, outcome


class KernelBackendBase:
    """Shared default implementations for concrete backends.

    Subclasses must provide ``name``, ``tolerance``, ``sinkhorn_core``
    and ``sinkhorn_core_batched``; the SVD defaults delegate to the
    same LAPACK routines the library has always used (``svdvals`` for
    one matrix, stacked ``numpy.linalg.svd`` for ensembles), and the
    fused pass composes the public batched kernels so every backend
    inherits identical measure semantics.
    """

    name = "abstract"
    tolerance = 0.0

    def svd_values(self, matrix) -> np.ndarray:
        import scipy.linalg

        return scipy.linalg.svdvals(matrix)

    def svd_values_batched(self, stack) -> np.ndarray:
        return np.linalg.svd(stack, compute_uv=False)

    def fused_standard_measures(
        self,
        stack,
        *,
        tol,
        max_iterations,
        deadline_s=None,
        warm_start=None,
        precision=None,
    ):
        """Batched (MPH, TDH, TMA, iterations, converged) columns of a
        strictly positive ``(N, T, M)`` stack in one backend pass."""
        from ..batch.measures import average_adjacent_ratio_batched
        from ..batch.sinkhorn import standardize_batched
        from ..obs import metrics as _metrics, span as _obs_span

        mph = average_adjacent_ratio_batched(stack.sum(axis=1))
        tdh = average_adjacent_ratio_batched(stack.sum(axis=2))
        standard = standardize_batched(
            stack,
            tol=tol,
            max_iterations=max_iterations,
            require_convergence=False,
            deadline_s=deadline_s,
            backend=self,
            precision=precision,
            warm_start=warm_start,
        )
        t0 = time.perf_counter()
        with _obs_span(
            "svd.batched",
            slices=stack.shape[0],
            rows=stack.shape[1],
            cols=stack.shape[2],
        ):
            values = self.svd_values_batched(standard.matrix)
        _metrics.observe_svd("batched", time.perf_counter() - t0)
        if values.shape[1] < 2:
            tma = np.zeros(stack.shape[0], dtype=np.float64)
        else:
            tma = np.clip(
                values[:, 1:].sum(axis=1) / (values.shape[1] - 1), 0.0, 1.0
            )
        return mph, tdh, tma, standard.iterations, standard.converged
