"""The kernel-backend registry (env/kwarg selection).

Backends register under a short name; every kernel entry point accepts
``backend=`` as either a registered name or a
:class:`~repro.backends.KernelBackend` instance.  When the kwarg is
omitted the ``REPRO_BACKEND`` environment variable picks the default,
falling back to the pure-numpy reference backend.

Selection is resolved *per call* — two calls in the same process can
use different backends, and the serve layer threads the request's
``backend`` option straight through, so distinct backends never alias
in the result cache (the option is part of the cache key).
"""

from __future__ import annotations

import os

from .._validation import check_choice
from ..exceptions import MatrixValueError
from .base import KernelBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "register_backend",
    "get_backend",
    "list_backends",
    "resolve_backend",
]

#: Environment variable naming the default backend for calls that do
#: not pass ``backend=`` explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(
    name: str, backend: KernelBackend, *, replace: bool = False
) -> None:
    """Register ``backend`` under ``name``.

    Re-registering an existing name is rejected unless ``replace=True``
    (so a typo cannot silently shadow the reference backend).
    """
    if not isinstance(name, str) or not name:
        raise MatrixValueError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    if not isinstance(backend, KernelBackend):
        raise MatrixValueError(
            f"backend {name!r} does not implement the KernelBackend "
            f"protocol (got {type(backend).__name__})"
        )
    if name in _REGISTRY and not replace:
        raise MatrixValueError(
            f"backend {name!r} is already registered; pass replace=True "
            "to override it"
        )
    _REGISTRY[name] = backend


def list_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name``.

    Unknown names raise :class:`~repro.exceptions.MatrixValueError`
    listing the registered backends (the shared ``check_choice``
    message every mode-selecting kwarg uses).
    """
    check_choice(name, name="backend", choices=list_backends())
    return _REGISTRY[name]


def resolve_backend(backend=None) -> KernelBackend:
    """Resolve the ``backend=`` kwarg every kernel entry point accepts.

    ``None`` consults :data:`BACKEND_ENV_VAR` and falls back to
    ``"numpy"``; a string is looked up in the registry; a
    :class:`KernelBackend` instance is used as-is (unregistered ad-hoc
    backends are allowed at the library level — only the serve layer
    insists on registered names, because the name is the cache key).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "numpy"
    if isinstance(backend, str):
        return get_backend(backend)
    if isinstance(backend, KernelBackend):
        return backend
    raise MatrixValueError(
        "backend must be a registered backend name or a KernelBackend "
        f"instance, got {backend!r}"
    )
