"""Pluggable kernel backends (``docs/BACKENDS.md``).

One registry fronts interchangeable implementations of the library's
hot loops — scalar/batched Sinkhorn, singular values, and the fused
normalize-and-measure pass.  Every kernel entry point
(:func:`repro.normalize.sinkhorn_knopp`, :func:`repro.standardize`,
the batched variants, :func:`repro.characterize` /
:func:`repro.batch.characterize_ensemble`, the robust pipeline, the
CLI ``--backend`` flag and the serve request option) accepts the same
``backend=`` / ``precision=`` pair and resolves it here.

Built-in backends:

* ``"numpy"`` — the pure-numpy reference (always registered; the
  differential harness defines correctness against it);
* ``"numba"`` — JIT-compiled loops, registered only when numba is
  importable.

>>> from repro.backends import list_backends
>>> "numpy" in list_backends()
True
"""

from __future__ import annotations

import importlib.util

from .base import (
    KernelBackend,
    KernelBackendBase,
    PRECISIONS,
    check_precision,
)
from .numpy_backend import NumpyBackend
from .registry import (
    BACKEND_ENV_VAR,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "KernelBackendBase",
    "NumpyBackend",
    "PRECISIONS",
    "check_precision",
    "get_backend",
    "list_backends",
    "register_backend",
    "resolve_backend",
]

register_backend("numpy", NumpyBackend(), replace=True)

if importlib.util.find_spec("numba") is not None:  # pragma: no cover
    try:
        from .numba_backend import NumbaBackend  # noqa: F401
    except ImportError:
        pass
    else:
        __all__.append("NumbaBackend")
        register_backend("numba", NumbaBackend(), replace=True)
