"""Optional numba backend (JIT-compiled scalar loops).

Importing this module requires numba; ``repro.backends`` only imports
it when numba is installed, and the differential tests in
``tests/backends/`` auto-skip otherwise.  The njit core replaces the
broadcast passes with explicit loops — summation order differs from
numpy's pairwise reduction, so agreement with the reference is bounded
by the documented ``tolerance`` (1e-10) instead of being bit-exact.

Design notes:

* the njit kernel runs in *chunks* of iterations with the wall-clock
  deadline checked between chunks in Python, so ``deadline_s`` keeps
  working at slightly coarser granularity (one chunk) than the numpy
  backend (one iteration);
* the batched core is a Python loop over slices calling the scalar
  core, which makes per-slice results identical to a scalar run on
  that matrix *by construction* (the property the numpy active-mask
  loop maintains by careful bookkeeping);
* singular values delegate to the same LAPACK routines as the
  reference (a JIT SVD would buy nothing).
"""

from __future__ import annotations

import time

import numpy as np
from numba import njit

from .base import KernelBackendBase

__all__ = ["NumbaBackend"]

#: Iterations per njit call; the deadline is only checked between
#: chunks, so this bounds the overshoot past an expired deadline.
CHUNK_ITERATIONS = 256


@njit
def _sinkhorn_chunk(
    work, row_targets, col_targets, tol, n_iterations, row_scale, col_scale,
    residual_out,
):
    n_rows, n_cols = work.shape
    done = 0
    converged = False
    for _ in range(n_iterations):
        # Column pass (eq. 9, odd k).
        for j in range(n_cols):
            s = 0.0
            for i in range(n_rows):
                s += work[i, j]
            f = col_targets[j] / s
            for i in range(n_rows):
                work[i, j] *= f
            col_scale[j] *= f
        # Row pass (eq. 9, even k).
        for i in range(n_rows):
            s = 0.0
            for j in range(n_cols):
                s += work[i, j]
            f = row_targets[i] / s
            for j in range(n_cols):
                work[i, j] *= f
            row_scale[i] *= f
        # Joint residual after the row pass (the scalar stopping rule).
        r = 0.0
        for i in range(n_rows):
            s = 0.0
            for j in range(n_cols):
                s += work[i, j]
            d = abs(s - row_targets[i])
            if d > r:
                r = d
        for j in range(n_cols):
            s = 0.0
            for i in range(n_rows):
                s += work[i, j]
            d = abs(s - col_targets[j])
            if d > r:
                r = d
        residual_out[done] = r
        done += 1
        if r <= tol:
            converged = True
            break
    return done, converged


class NumbaBackend(KernelBackendBase):
    """JIT-compiled scalar Sinkhorn core, applied per slice when
    batched."""

    name = "numba"
    tolerance = 1e-10

    def sinkhorn_core(
        self,
        work,
        row_targets,
        col_targets,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        history,
        t_end,
    ):
        iterations = 0
        converged = history[-1] <= tol
        timed_out = False
        residual_out = np.empty(CHUNK_ITERATIONS, dtype=np.float64)
        while not converged and iterations < max_iterations:
            if t_end is not None and time.monotonic() >= t_end:
                timed_out = True
                break
            budget = min(CHUNK_ITERATIONS, max_iterations - iterations)
            done, converged = _sinkhorn_chunk(
                work,
                row_targets,
                col_targets,
                tol,
                budget,
                row_scale,
                col_scale,
                residual_out,
            )
            for k in range(done):
                history.append(float(residual_out[k]))
            iterations += done
            if done == 0:
                break
        return iterations, converged, timed_out

    def sinkhorn_core_batched(
        self,
        work,
        row_target,
        col_target,
        *,
        tol,
        max_iterations,
        row_scale,
        col_scale,
        histories,
        iterations,
        residual,
        converged,
        active,
        t_end,
        on_progress=None,
    ):
        n_slices, n_rows, n_cols = work.shape
        row_targets = np.full(n_rows, row_target, dtype=work.dtype)
        col_targets = np.full(n_cols, col_target, dtype=work.dtype)
        iterations_run = 0
        timed_out = False
        idx = np.nonzero(active)[0]
        if on_progress is not None and idx.size:
            on_progress(int(idx.size))
        for i in idx:
            if t_end is not None and time.monotonic() >= t_end:
                # Remaining slices freeze untouched (non-converged),
                # exactly like the numpy core's mid-iteration break.
                timed_out = True
                break
            hist = [float(residual[i])]
            ran, conv, slice_timed_out = self.sinkhorn_core(
                work[i],
                row_targets,
                col_targets,
                tol=tol,
                max_iterations=max_iterations,
                row_scale=row_scale[i],
                col_scale=col_scale[i],
                history=hist,
                t_end=t_end,
            )
            histories[i].extend(hist[1:])
            iterations[i] += ran
            residual[i] = hist[-1]
            converged[i] = conv
            active[i] = not conv
            iterations_run = max(iterations_run, ran)
            timed_out = timed_out or slice_timed_out
        return iterations_run, timed_out
