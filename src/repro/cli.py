"""Command-line interface: ``repro-hc`` / ``python -m repro``.

Subcommands
-----------
``measures FILE``
    Compute MPH/TDH/TMA (and the comparison statistics) for an ETC CSV.
``dataset NAME``
    Print a bundled dataset's measures (``cint2006rate``,
    ``cfp2006rate``) or list them with ``--list``.
``generate``
    Emit an ETC CSV hitting requested (MPH, TDH, TMA) targets.
``whatif FILE``
    Per-task/per-machine removal impact table for an ETC CSV.
``schedule FILE``
    Run mapping heuristics on an ETC CSV workload and print makespans.
``cluster FILE``
    Extract the task/machine affinity groups (spectral co-clustering on
    the standard form).
``sensitivity FILE``
    Robustness of the measures under multiplicative estimation noise.
``report FILE``
    Full Markdown heterogeneity report (measures, regime, affinity
    groups, highest-impact removals).
``recommend FILE``
    Measure-driven mapping-heuristic recommendation (and optionally the
    measured makespan ranking to check it).
``profile FILE``
    Run the characterize + scheduling pipeline under the
    :mod:`repro.obs` recorder and print the span/counter summary
    (Sinkhorn, SVD and heuristic hot paths).  ``FILE`` is an ETC CSV
    path or a bundled dataset name.  ``--ensemble N`` adds a batched
    ensemble characterization stage (optionally with a robust
    ``--policy`` and injected ``--inject-faults``), surfacing the
    ``ensemble.*`` / ``robust.*`` counters in the summary.
``characterize FILE``
    Fault-tolerant ensemble characterization (``repro.robust``): draw a
    perturbation ensemble around an ETC CSV or bundled dataset, apply a
    quarantine/repair policy and print the per-member measures plus the
    quarantine report.  ``--inject-faults "nan=1,stall=2"`` runs a
    seeded chaos drill against the pipeline.  ``--store PATH`` streams
    an on-disk stack store (:mod:`repro.shard`) out-of-core instead,
    with ``--memory-budget MB`` / ``--chunk-size`` bounding the peak
    working set.
``bench``
    Run the curated benchmark suite (``repro.obs.bench``) and write a
    machine-readable ``BENCH_<n>.json`` payload (git sha, wall/CPU
    stats, metric histograms).  ``--compare BASELINE.json`` exits
    non-zero when any benchmark regressed beyond ``--max-regression``;
    ``--replay CURRENT.json`` compares a previously written payload
    instead of re-running (deterministic CI gating).
``serve``
    Run the characterization service (:mod:`repro.serve`): a
    JSON-over-HTTP API for ``characterize`` / ``standardize`` /
    ``recommend-heuristic`` with request coalescing, a
    content-addressed result cache, per-request quarantine/repair
    policy and a ``/metrics`` endpoint.  See ``docs/SERVING.md``.
``loadgen generate|replay``
    Seedable service traffic: ``generate`` writes a replayable JSONL
    trace (optionally chaos-corrupted via ``--inject-faults``);
    ``replay`` fires a trace at a running server and prints the
    latency/error digest.
``serve-metrics``
    Expose the process-wide metrics registry in Prometheus text
    exposition format on a stdlib HTTP endpoint (``/metrics``), or dump
    one scrape to stdout with ``--print``.
``trace convert IN -o OUT``
    Convert a ``repro-hc profile -o trace.jsonl`` event stream into
    Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto).
``trace query FILE [--trace-id ID] [--slower-than MS] [--last N]``
    Inspect request traces from a ``repro-hc serve --trace`` span file:
    per-trace span trees with the stage-timing breakdown, filterable by
    trace id (prefix), total latency, or recency.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import __version__
from .analysis.whatif import whatif_drop_machines, whatif_drop_tasks
from .core.io import load_etc_csv, save_etc_csv
from .exceptions import ReproError
from .generate.target_driven import from_targets
from .measures.report import characterize
from .scheduling.selection import compare_heuristics
from .spec.datasets import list_datasets, load_dataset

__all__ = ["main", "build_parser"]


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` flag (kernel backend selection).

    Choices are deliberately not baked into argparse: the registry is
    consulted at call time, so an unknown name produces the library's
    canonical error listing the backends actually registered (which
    depends on optional dependencies like numba).
    """
    p.add_argument(
        "--backend",
        default=None,
        help="kernel backend running the Sinkhorn/SVD kernels "
        "(default: $REPRO_BACKEND or 'numpy'; see repro.backends)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-hc`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-hc",
        description="Heterogeneity measures for HC environments "
        "(MPH / TDH / TMA, IPDPS 2011 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measures", help="characterize an ETC CSV file")
    p.add_argument("file", help="labelled ETC CSV (see repro.core.io)")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    _add_backend_flag(p)

    p = sub.add_parser("dataset", help="characterize a bundled dataset")
    p.add_argument("name", nargs="?", help="dataset name")
    p.add_argument("--list", action="store_true", help="list dataset names")
    p.add_argument("--json", action="store_true")

    p = sub.add_parser("generate", help="generate an ETC CSV with target measures")
    p.add_argument("--tasks", type=int, required=True)
    p.add_argument("--machines", type=int, required=True)
    p.add_argument("--mph", type=float, default=0.7)
    p.add_argument("--tdh", type=float, default=0.7)
    p.add_argument("--tma", type=float, default=0.2)
    p.add_argument("--jitter", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("-o", "--output", required=True, help="output CSV path")

    p = sub.add_parser("whatif", help="removal impact study for an ETC CSV")
    p.add_argument("file")
    p.add_argument(
        "--axis",
        choices=("tasks", "machines", "both"),
        default="both",
        help="which removals to study",
    )

    p = sub.add_parser("schedule", help="run mapping heuristics on an ETC CSV")
    p.add_argument("file")
    p.add_argument("--total", type=int, default=None,
                   help="task instances to draw (default: one per type)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--heuristics",
        default=None,
        help="comma-separated registry names (default: all but ga)",
    )

    p = sub.add_parser(
        "cluster", help="extract task/machine affinity groups"
    )
    p.add_argument("file")
    p.add_argument("--clusters", type=int, default=None,
                   help="group count (default: from the singular spectrum)")

    p = sub.add_parser(
        "sensitivity", help="measure robustness under estimation noise"
    )
    p.add_argument("file")
    p.add_argument("--trials", type=int, default=20)
    p.add_argument(
        "--noise",
        default="0.01,0.05,0.1,0.2",
        help="comma-separated log-space sigma levels",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="characterize each level's trial stack through the "
        "vectorized repro.batch kernels (--no-batched forces the "
        "per-trial scalar loop)",
    )

    p = sub.add_parser("report", help="full Markdown heterogeneity report")
    p.add_argument("file")
    p.add_argument("--name", default=None, help="report heading")
    p.add_argument("--no-whatif", action="store_true",
                   help="skip the removal-impact section")

    p = sub.add_parser(
        "recommend", help="measure-driven mapping-heuristic recommendation"
    )
    p.add_argument("file")
    p.add_argument("--check", action="store_true",
                   help="also run every heuristic and show the ranking")
    p.add_argument("--total", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "profile",
        help="trace the measure/scheduling hot paths (repro.obs)",
    )
    p.add_argument(
        "file",
        help="labelled ETC CSV, or a bundled dataset name "
        "(see `repro-hc dataset --list`)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help="also stream the raw trace events to this JSONL file",
    )
    p.add_argument("--total", type=int, default=None,
                   help="task instances for the scheduling stage")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ensemble",
        type=int,
        default=None,
        metavar="N",
        help="also profile an N-member perturbation-ensemble "
        "characterization (surfaces the ensemble.* counters)",
    )
    p.add_argument(
        "--policy",
        choices=("raise", "quarantine", "repair"),
        default="raise",
        help="fault policy for the --ensemble stage (repro.robust)",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="chaos spec for the --ensemble stage, e.g. 'nan=1,stall=2'",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    _add_backend_flag(p)

    p = sub.add_parser(
        "characterize",
        help="fault-tolerant ensemble characterization (repro.robust)",
    )
    p.add_argument(
        "file",
        nargs="?",
        default=None,
        help="labelled ETC CSV, or a bundled dataset name "
        "(see `repro-hc dataset --list`); omit when streaming --store",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="characterize an on-disk stack store out-of-core "
        "(repro.shard; see `docs/SHARDING.md`) instead of drawing an "
        "ensemble around FILE",
    )
    p.add_argument(
        "--memory-budget", type=float, default=None, metavar="MB",
        help="peak working-set budget in MiB for the --store path "
        "(the shard planner picks the chunk size)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None,
        help="members per shard chunk for the --store path "
        "(mutually exclusive with --memory-budget)",
    )
    p.add_argument(
        "--members", type=int, default=16,
        help="ensemble size drawn around the input matrix",
    )
    p.add_argument(
        "--noise", type=float, default=0.05,
        help="relative perturbation of each ensemble draw",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--policy",
        choices=("raise", "quarantine", "repair"),
        default="quarantine",
        help="fault handling: raise aborts on the first faulty member, "
        "quarantine isolates them, repair also retries them",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="seeded chaos drill: comma-separated kind=count, kinds: "
        "nan, zero-row, zero-col, decomposable, non-convergent, stall",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--severity", type=float, default=None,
        help="corner dynamic range for injected non-convergent members",
    )
    p.add_argument(
        "--stall-seconds", type=float, default=None,
        help="injected straggler sleep for stall faults",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-member worker timeout in seconds (straggler guard)",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget for the whole run in seconds",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="repair-ladder attempts per quarantined member",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="process-pool width for the scalar/worker path")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    _add_backend_flag(p)

    p = sub.add_parser(
        "bench",
        help="run the curated benchmarks, write BENCH_<n>.json, "
        "optionally gate against a baseline",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="reduced repeat counts (CI smoke mode)",
    )
    p.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated case names (default: all; see "
        "repro.obs.bench.BENCH_CASES)",
    )
    p.add_argument(
        "-o", "--output", default=None,
        help="output path (default: next free BENCH_<n>.json here)",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="reuse this previously written payload instead of "
        "re-running the benchmarks (deterministic --compare gating)",
    )
    p.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="baseline BENCH JSON; exit 1 when any case regressed",
    )
    p.add_argument(
        "--max-regression", type=float, default=0.15,
        help="allowed fractional wall-time slowdown vs the baseline "
        "(default 0.15 = 15%%)",
    )

    p = sub.add_parser(
        "serve",
        help="run the characterization service (JSON over HTTP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 picks a free ephemeral port)",
    )
    p.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="coalescing window: how long the first request of a batch "
        "waits for same-shape company before the kernel fires",
    )
    p.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a coalesced batch immediately at this size",
    )
    p.add_argument(
        "--cache-entries", type=int, default=1024,
        help="in-memory result-cache capacity (LRU)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="spill evicted cache entries to this directory",
    )
    p.add_argument(
        "--no-metrics", action="store_true",
        help="do not enable the process metrics registry",
    )
    p.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-endpoint ceiling on concurrent compute admissions; "
        "overflow queues up to --queue-depth, then is shed with 503",
    )
    p.add_argument(
        "--queue-depth", type=int, default=256,
        help="bounded per-endpoint admission queue",
    )
    p.add_argument(
        "--no-adaptive", action="store_true",
        help="disable the AIMD capacity estimator (fixed admission "
        "limit of --max-inflight)",
    )
    p.add_argument(
        "--target-p99-ms", type=float, default=500.0,
        help="request-latency target the AIMD estimator steers the "
        "admission limit toward",
    )
    p.add_argument(
        "--default-deadline-ms", type=float, default=None,
        help="server-side deadline applied to requests that do not "
        "send their own deadline_ms",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="graceful-shutdown budget (seconds) for in-flight "
        "requests on SIGTERM/SIGINT",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="emit request/cache/kernel spans to this JSONL file "
        "(query with `repro-hc trace query`); responses carry "
        "X-Repro-Trace-Id regardless",
    )
    p.add_argument(
        "--slow-log", default=None, metavar="PATH",
        help="rotating JSONL log of requests slower than "
        "--slow-threshold-ms (trace id + stage breakdown per record)",
    )
    p.add_argument(
        "--slow-threshold-ms", type=float, default=500.0,
        help="slow-request threshold for --slow-log (default 500)",
    )

    p = sub.add_parser(
        "loadgen",
        help="generate / replay characterization-service traffic",
    )
    loadgen_sub = p.add_subparsers(dest="loadgen_command", required=True)
    p = loadgen_sub.add_parser(
        "generate", help="write a seedable, replayable request trace"
    )
    p.add_argument("-o", "--output", required=True, help="JSONL trace path")
    p.add_argument("--requests", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tasks", type=int, default=8)
    p.add_argument("--machines", type=int, default=8)
    p.add_argument("--rate", type=float, default=200.0,
                   help="mean arrival rate in requests/second")
    p.add_argument(
        "--duplicate-fraction", type=float, default=0.3,
        help="fraction of requests resubmitting a base matrix "
        "byte-for-byte (cache-hit material)",
    )
    p.add_argument(
        "--perturb-fraction", type=float, default=0.3,
        help="fraction submitting a perturbed base matrix (coalescing "
        "material)",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="corrupt a seeded subset of request matrices, e.g. "
        "'nan=2,zero-row=1' (data kinds only)",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="stamp this per-request latency budget into the payloads",
    )
    p.add_argument(
        "--deadline-fraction", type=float, default=1.0,
        help="seeded fraction of requests that carry the deadline "
        "(default: all of them)",
    )
    p = loadgen_sub.add_parser(
        "replay", help="fire a trace at a running server"
    )
    p.add_argument("trace", help="JSONL trace from `loadgen generate`")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument(
        "--time-scale", type=float, default=1.0,
        help="stretch (>1) or compress (<1) recorded arrival gaps; "
        "0 releases every request at once",
    )
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="machine-readable digest")

    p = sub.add_parser(
        "serve-metrics",
        help="serve the metrics registry in Prometheus text format",
    )
    p.add_argument("--port", type=int, default=9464)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--print", action="store_true", dest="print_once",
        help="print one exposition snapshot to stdout and exit",
    )

    p = sub.add_parser(
        "trace",
        help="trace-file utilities (Chrome export, request-trace query)",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "convert",
        help="convert a repro.obs JSONL trace to Chrome trace JSON",
    )
    p.add_argument("input", help="JSONL trace from `repro-hc profile -o`")
    p.add_argument(
        "-o", "--output", required=True,
        help="Chrome trace-event JSON output path",
    )
    p = trace_sub.add_parser(
        "query",
        help="inspect request traces from a span JSONL file "
        "(`repro-hc serve --trace`)",
    )
    p.add_argument("input", help="span JSONL file from `serve --trace`")
    p.add_argument(
        "--trace-id", default=None,
        help="show only this trace (a unique id prefix suffices)",
    )
    p.add_argument(
        "--slower-than", type=float, default=None, metavar="MS",
        help="show only traces with total latency above this (ms)",
    )
    p.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="show only the N most recent matching traces",
    )
    return parser


def _address_in_use_error(exc: OSError, host: str, port: int) -> str | None:
    """An actionable one-liner when ``exc`` is EADDRINUSE, else None."""
    import errno

    if exc.errno != errno.EADDRINUSE:
        return None
    return (
        f"error: {host}:{port} is already in use — another process is "
        f"listening there; pass --port with a free port (or --port 0 "
        f"for an ephemeral one)"
    )


def _json_float(value) -> float | None:
    """NaN-safe float for JSON payloads (NaN rows become null)."""
    value = float(value)
    return None if value != value else value


def _load_env(file: str):
    """Load an ETC environment from a CSV path or bundled dataset name."""
    if file in list_datasets():
        return load_dataset(file)
    return load_etc_csv(file)


def _ensemble_stack(env, members: int, noise: float, seed: int):
    """An (N, T, M) perturbation ensemble around ``env``'s ECS matrix."""
    from .generate.ensembles import perturb_stack
    from .normalize.standard_form import _coerce_ecs

    return perturb_stack(_coerce_ecs(env), noise, members, seed=seed)


def _build_fault_plan(args, n_members: int):
    """A seeded FaultPlan from --inject-faults, or None."""
    if args.inject_faults is None:
        return None
    from .robust import FaultPlan
    from .robust.chaos import DEFAULT_SEVERITY, DEFAULT_STALL_S

    severity = getattr(args, "severity", None)
    stall_s = getattr(args, "stall_seconds", None)
    return FaultPlan.random(
        n_members,
        faults=args.inject_faults,
        seed=args.fault_seed,
        severity=DEFAULT_SEVERITY if severity is None else severity,
        stall_s=DEFAULT_STALL_S if stall_s is None else stall_s,
    )


def _print_profile(profile, as_json: bool) -> None:
    if as_json:
        print(
            json.dumps(
                {
                    "n_tasks": profile.n_tasks,
                    "n_machines": profile.n_machines,
                    "mph": profile.mph,
                    "tdh": profile.tdh,
                    "tma": profile.tma,
                    "tma_method": profile.tma_method,
                    "machine_r": profile.machine_r,
                    "machine_g": profile.machine_g,
                    "machine_cov": profile.machine_cov,
                    "task_r": profile.task_r,
                    "task_g": profile.task_g,
                    "task_cov": profile.task_cov,
                    "sinkhorn_iterations": profile.sinkhorn_iterations,
                },
                indent=2,
            )
        )
    else:
        print(profile.summary())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "measures":
            _print_profile(
                characterize(load_etc_csv(args.file), backend=args.backend),
                args.json,
            )
        elif args.command == "dataset":
            if args.list or not args.name:
                for name in list_datasets():
                    print(name)
            else:
                _print_profile(characterize(load_dataset(args.name)), args.json)
        elif args.command == "generate":
            env = from_targets(
                args.tasks,
                args.machines,
                (args.mph, args.tdh, args.tma),
                jitter=args.jitter,
                seed=args.seed,
            )
            save_etc_csv(env.to_etc(), args.output)
            profile = characterize(env)
            print(f"wrote {args.output}")
            print(profile.summary())
        elif args.command == "whatif":
            env = load_etc_csv(args.file)
            entries = []
            if args.axis in ("tasks", "both"):
                entries += whatif_drop_tasks(env)
            if args.axis in ("machines", "both"):
                entries += whatif_drop_machines(env)
            for entry in entries:
                print(entry.summary())
        elif args.command == "schedule":
            env = load_etc_csv(args.file)
            names = (
                [n.strip() for n in args.heuristics.split(",")]
                if args.heuristics
                else None
            )
            comparison = compare_heuristics(
                env, heuristics=names, total=args.total, seed=args.seed
            )
            width = max(len(n) for n in comparison.makespans)
            for name, value in sorted(
                comparison.makespans.items(), key=lambda kv: kv[1]
            ):
                print(f"{name.ljust(width)}  makespan={value:.2f}")
            print(f"best: {comparison.best}")
        elif args.command == "cluster":
            from .measures.clusters import affinity_clusters

            env = load_etc_csv(args.file)
            clusters = affinity_clusters(env, n_clusters=args.clusters)
            print(
                f"{clusters.n_clusters} affinity group(s), "
                f"strength (TMA) = {clusters.strength:.4f}"
            )
            for cid in range(clusters.n_clusters):
                tasks = [
                    env.task_names[i] for i in clusters.task_groups()[cid]
                ]
                machines = [
                    env.machine_names[j]
                    for j in clusters.machine_groups()[cid]
                ]
                print(f"group {cid}: tasks={tasks} machines={machines}")
        elif args.command == "sensitivity":
            from .analysis.sensitivity import sensitivity_study

            env = load_etc_csv(args.file)
            levels = tuple(
                float(x) for x in args.noise.split(",") if x.strip()
            )
            result = sensitivity_study(
                env,
                noise_levels=levels,
                trials=args.trials,
                seed=args.seed,
                batched=args.batched,
            )
            print(result.table())
        elif args.command == "report":
            from .analysis.reporting import environment_report

            env = load_etc_csv(args.file)
            print(
                environment_report(
                    env,
                    name=args.name or args.file,
                    include_whatif=not args.no_whatif,
                )
            )
        elif args.command == "recommend":
            from .scheduling.selection import recommend_heuristic

            env = load_etc_csv(args.file)
            name, reason = recommend_heuristic(env)
            print(f"recommended: {name}")
            print(f"reason: {reason}")
            if args.check:
                comparison = compare_heuristics(
                    env, total=args.total, seed=args.seed
                )
                for h, ratio in sorted(
                    comparison.ratios.items(), key=lambda kv: kv[1]
                ):
                    marker = "  <- recommended" if h == name else ""
                    print(f"  {h:<10} ratio={ratio:.2f}{marker}")
        elif args.command == "profile":
            from .obs import recording

            env = _load_env(args.file)
            ensemble = None
            with recording(trace_path=args.output) as rec:
                profile = characterize(env, backend=args.backend)
                comparison = compare_heuristics(
                    env, total=args.total, seed=args.seed
                )
                if args.ensemble:
                    from .batch import characterize_ensemble

                    ensemble = characterize_ensemble(
                        _ensemble_stack(
                            env, args.ensemble, 0.05, args.seed
                        ),
                        policy=args.policy,
                        fault_plan=_build_fault_plan(args, args.ensemble),
                        backend=args.backend,
                    )
                stats = rec.summary()
            if args.json:
                payload = {
                    "file": args.file,
                    "n_tasks": profile.n_tasks,
                    "n_machines": profile.n_machines,
                    "measures": {
                        "mph": profile.mph,
                        "tdh": profile.tdh,
                        "tma": profile.tma,
                    },
                    "best_heuristic": comparison.best,
                    **stats.to_dict(),
                }
                if ensemble is not None:
                    payload["ensemble"] = ensemble.summary()
                print(json.dumps(payload, indent=2))
            else:
                print(profile.summary())
                print(f"best heuristic: {comparison.best}")
                if ensemble is not None:
                    print(f"ensemble: {ensemble.summary()}")
                print()
                print(stats.table())
                if args.output:
                    print(f"\ntrace events written to {args.output}")
        elif args.command == "characterize":
            stack = shard_plan = None
            if args.store is not None:
                if args.file is not None:
                    print(
                        "error: pass FILE or --store, not both (a store "
                        "is already a full ensemble)",
                        file=sys.stderr,
                    )
                    return 2
                from .shard import StackStore, plan_shards

                store = StackStore(args.store)
                n_members = len(store)
                shard_plan = plan_shards(
                    store.n_members,
                    store.n_tasks,
                    store.n_machines,
                    memory_budget_bytes=(
                        int(args.memory_budget * 2**20)
                        if args.memory_budget is not None
                        else None
                    ),
                    chunk_size=args.chunk_size,
                )
            else:
                if args.file is None:
                    print(
                        "error: characterize needs an ETC FILE (or "
                        "--store PATH for an on-disk ensemble)",
                        file=sys.stderr,
                    )
                    return 2
                if (
                    args.memory_budget is not None
                    or args.chunk_size is not None
                ):
                    print(
                        "error: --memory-budget/--chunk-size only apply "
                        "to --store runs",
                        file=sys.stderr,
                    )
                    return 2
                env = _load_env(args.file)
                stack = _ensemble_stack(
                    env, args.members, args.noise, args.seed
                )
                n_members = args.members
            plan = _build_fault_plan(args, n_members)
            budget = None
            if args.policy != "raise":
                from .robust import Budget

                budget = Budget(
                    deadline_s=args.deadline,
                    member_timeout_s=args.timeout,
                    max_attempts=args.max_attempts,
                )
            from .batch import characterize_ensemble

            if args.store is not None:
                result = characterize_ensemble(
                    store=args.store,
                    memory_budget_mb=args.memory_budget,
                    chunk_size=args.chunk_size,
                    policy=args.policy,
                    budget=budget,
                    fault_plan=plan,
                    n_jobs=args.jobs,
                    backend=args.backend,
                )
            else:
                result = characterize_ensemble(
                    stack,
                    policy=args.policy,
                    budget=budget,
                    fault_plan=plan,
                    n_jobs=args.jobs,
                    backend=args.backend,
                )
            report = getattr(result, "report", None)
            if args.json:
                payload = {
                    "file": args.file if args.store is None else args.store,
                    "members": len(result),
                    "policy": args.policy,
                    "mph": [_json_float(v) for v in result.mph],
                    "tdh": [_json_float(v) for v in result.tdh],
                    "tma": [_json_float(v) for v in result.tma],
                    "converged": result.converged.tolist(),
                }
                if shard_plan is not None:
                    payload["shards"] = {
                        "count": len(shard_plan.shards),
                        "chunk_size": shard_plan.chunk_size,
                        "memory_budget_bytes": (
                            shard_plan.memory_budget_bytes
                        ),
                        "estimated_peak_bytes": (
                            shard_plan.estimated_peak_bytes
                        ),
                    }
                if plan is not None:
                    payload["injected"] = {
                        str(k): v
                        for k, v in plan.expected_categories().items()
                    }
                if report is not None:
                    payload["quarantined"] = list(report.quarantined)
                    payload["repaired"] = list(report.repaired)
                    payload["categories"] = {
                        str(k): v for k, v in report.categories().items()
                    }
                print(json.dumps(payload, indent=2))
            else:
                if shard_plan is not None:
                    print(shard_plan.summary())
                if plan is not None:
                    print(plan.summary())
                print(result.summary())
                if report is not None:
                    print(report.summary())
        elif args.command == "bench":
            from .obs import bench as obs_bench

            try:
                if args.replay is not None:
                    payload = obs_bench.load_bench(args.replay)
                else:
                    names = (
                        [
                            n.strip()
                            for n in args.benchmarks.split(",")
                            if n.strip()
                        ]
                        if args.benchmarks
                        else None
                    )
                    payload = obs_bench.run_bench(
                        quick=args.quick, benchmarks=names
                    )
                    out_path = obs_bench.write_bench(payload, path=args.output)
                    print(f"wrote {out_path}")
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.compare is not None:
                try:
                    comparison = obs_bench.compare_bench(
                        payload,
                        obs_bench.load_bench(args.compare),
                        max_regression=args.max_regression,
                    )
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                print(comparison.table())
                if not comparison.ok:
                    return 1
        elif args.command == "serve":
            import asyncio
            import signal

            from .serve import CharacterizationServer, ServeConfig

            service = CharacterizationServer(
                ServeConfig(
                    host=args.host,
                    port=args.port,
                    linger_s=args.linger_ms / 1e3,
                    max_batch=args.max_batch,
                    cache_entries=args.cache_entries,
                    cache_dir=args.cache_dir,
                    enable_metrics=not args.no_metrics,
                    max_inflight=args.max_inflight,
                    queue_depth=args.queue_depth,
                    adaptive=not args.no_adaptive,
                    target_p99_ms=args.target_p99_ms,
                    default_deadline_ms=args.default_deadline_ms,
                    drain_timeout_s=args.drain_timeout,
                    trace_path=args.trace,
                    slow_log_path=args.slow_log,
                    slow_threshold_ms=args.slow_threshold_ms,
                )
            )

            async def _serve() -> None:
                await service.start()
                host, port = service.address
                print(
                    f"serving characterization API on "
                    f"http://{host}:{port}/v1/{{characterize,standardize,"
                    f"recommend-heuristic}} (GET /metrics, /healthz)",
                    flush=True,
                )
                loop = asyncio.get_running_loop()
                drain = asyncio.Event()
                received: dict[str, str] = {}

                def _on_signal(name: str) -> None:
                    received["signal"] = name
                    drain.set()

                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(sig, _on_signal, sig.name)
                    except (NotImplementedError, ValueError):
                        pass  # pragma: no cover - non-unix loop
                serve_task = asyncio.create_task(service.serve_forever())
                drain_task = asyncio.create_task(drain.wait())
                await asyncio.wait(
                    {serve_task, drain_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not drain.is_set():
                    drain_task.cancel()
                    await serve_task  # re-raise the server's error
                    return
                print(
                    f"received {received.get('signal', 'signal')}: "
                    f"draining (in-flight finishes, new work sheds, "
                    f"timeout {args.drain_timeout:.1f}s)",
                    flush=True,
                )
                clean = await service.shutdown(args.drain_timeout)
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                print(
                    "drain complete"
                    if clean
                    else "drain timed out with work in flight",
                    flush=True,
                )

            try:
                asyncio.run(_serve())
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
            except OSError as exc:
                message = _address_in_use_error(exc, args.host, args.port)
                if message is None:
                    raise
                print(message, file=sys.stderr)
                return 2
        elif args.command == "loadgen":
            from .serve import loadgen

            if args.loadgen_command == "generate":
                try:
                    trace = loadgen.generate_trace(
                        requests=args.requests,
                        seed=args.seed,
                        shape=(args.tasks, args.machines),
                        rate_hz=args.rate,
                        duplicate_fraction=args.duplicate_fraction,
                        perturb_fraction=args.perturb_fraction,
                        faults=args.inject_faults,
                        fault_seed=args.fault_seed,
                        deadline_ms=args.deadline_ms,
                        deadline_fraction=args.deadline_fraction,
                    )
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                loadgen.save_trace(trace, args.output)
                print(f"wrote {len(trace)} request(s) to {args.output}")
            else:
                try:
                    trace = loadgen.load_trace(args.trace)
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                try:
                    report = loadgen.replay_trace(
                        trace,
                        args.host,
                        args.port,
                        time_scale=args.time_scale,
                        timeout_s=args.timeout,
                    )
                except ConnectionRefusedError:
                    print(
                        f"error: nothing is listening on "
                        f"{args.host}:{args.port} — start the server "
                        f"with `repro-hc serve`",
                        file=sys.stderr,
                    )
                    return 2
                if args.json:
                    print(json.dumps(report.to_payload(), indent=2))
                else:
                    print(report.summary())
        elif args.command == "serve-metrics":
            from .obs import (
                enable_metrics,
                render_prometheus,
                start_metrics_server,
            )

            enable_metrics()
            if args.print_once:
                sys.stdout.write(render_prometheus())
            else:
                try:
                    server = start_metrics_server(
                        port=args.port, host=args.host, in_thread=False
                    )
                except OSError as exc:
                    message = _address_in_use_error(
                        exc, args.host, args.port
                    )
                    if message is None:
                        raise
                    print(message, file=sys.stderr)
                    return 2
                host, port = server.server_address[:2]
                print(f"serving metrics on http://{host}:{port}/metrics")
                try:
                    server.serve_forever()
                except KeyboardInterrupt:  # pragma: no cover - interactive
                    pass
                finally:
                    server.server_close()
        elif args.command == "trace" and args.trace_command == "convert":
            from .obs import convert_trace_jsonl

            try:
                count = convert_trace_jsonl(args.input, args.output)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"wrote {count} trace event(s) to {args.output}")
        elif args.command == "trace" and args.trace_command == "query":
            from .obs import format_trace, load_spans, query_traces

            try:
                spans = load_spans(args.input)
                views = query_traces(
                    spans,
                    trace_id=args.trace_id,
                    slower_than_s=(
                        args.slower_than / 1e3
                        if args.slower_than is not None
                        else None
                    ),
                    last=args.last,
                )
            except (ValueError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not views:
                print("no matching traces")
                return 1
            for view in views:
                print(format_trace(view))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
