"""Machine metadata for the paper's five SPEC systems (Fig. 5).

The paper chose processors "that have different architectures and are
produced by different manufacturers" — an x86 Xeon, a SPARC, a consumer
Core i7, an Opteron, and a POWER system — precisely so that the
benchmark suites would exhibit task-machine affinity.  The metadata
here reproduces that Fig. 5 line-up for reports and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DatasetError

__all__ = ["MachineInfo", "machine_info", "MACHINE_INFO"]


@dataclass(frozen=True)
class MachineInfo:
    """One machine of the paper's evaluation line-up.

    Attributes
    ----------
    key : str
        Short column label (``m1`` .. ``m5``).
    system : str
        Full system name as the paper's Fig. 5 lists it.
    vendor : str
    processor : str
    architecture : str
        Instruction-set family (the diversity driving the affinity).
    """

    key: str
    system: str
    vendor: str
    processor: str
    architecture: str


#: Fig. 5's five machines, in column order.
MACHINE_INFO: tuple[MachineInfo, ...] = (
    MachineInfo(
        key="m1",
        system="ASUS TS100-E6 (P7F-X) server system",
        vendor="ASUS",
        processor="Intel Xeon X3470",
        architecture="x86-64 (Nehalem)",
    ),
    MachineInfo(
        key="m2",
        system="Fujitsu SPARC Enterprise M3000",
        vendor="Fujitsu",
        processor="SPARC64 VII",
        architecture="SPARC V9",
    ),
    MachineInfo(
        key="m3",
        system="CELSIUS W280",
        vendor="Fujitsu",
        processor="Intel Core i7-870",
        architecture="x86-64 (Nehalem)",
    ),
    MachineInfo(
        key="m4",
        system="ProLiant SL165z G7",
        vendor="HP",
        processor="AMD Opteron 6174 (2.2 GHz)",
        architecture="x86-64 (Magny-Cours)",
    ),
    MachineInfo(
        key="m5",
        system="IBM Power 750 Express (3.55 GHz, 32 core, SLES)",
        vendor="IBM",
        processor="POWER7",
        architecture="Power ISA",
    ),
)

_BY_KEY = {info.key: info for info in MACHINE_INFO}


def machine_info(key: str) -> MachineInfo:
    """Look up one machine by its short column label.

    Examples
    --------
    >>> machine_info("m5").vendor
    'IBM'
    """
    try:
        return _BY_KEY[key.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown machine {key!r}; valid keys: "
            f"{', '.join(sorted(_BY_KEY))}"
        ) from None
