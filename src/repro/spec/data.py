"""Frozen SPEC CPU2006Rate-like peak-runtime tables (Section V data).

These tables are the *reconstructed* stand-ins for the peak-runtime ETC
matrices the paper extracts from spec.org (see the package docstring
and DESIGN.md "Substitutions").  They were produced once by
:func:`repro.spec.reconstruction.reconstruct_tables` with frozen seeds
and are asserted bit-identical by ``tests/spec/test_reconstruction.py``.

Units: seconds (peak runtime of one copy).  Rows are task types in SPEC
suite order, columns the paper's five machines (Fig. 5).

Measured values of the shipped tables (paper-reported in parentheses):

* CINT: TDH 0.900 (0.90), MPH 0.820 (0.82), TMA 0.070 (0.07)
* CFP:  TDH 0.910 (0.91), MPH 0.830 (0.83), TMA 0.172 (value lost in
  the source scan; the paper states only that it exceeds CINT's)
* Fig. 8(a): TMA 0.050 (0.05), TDH 0.160 (0.16)
* Fig. 8(b): TMA 0.600 (0.60), TDH 0.100 (below Fig. 8(a)'s,
  matching the paper's homogeneity ordering)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MACHINES",
    "CINT_TASKS",
    "CFP_TASKS",
    "cint2006rate",
    "cfp2006rate",
]

#: The paper's five machines (Fig. 5), in column order m1..m5.
MACHINES: tuple[str, ...] = (
    "ASUS TS100-E6 (P7F-X) Intel Xeon X3470",
    "Fujitsu SPARC Enterprise M3000",
    "CELSIUS W280 Intel Core i7-870",
    "ProLiant SL165z G7 AMD Opteron 6174",
    "IBM Power 750 Express 3.55 GHz",
)

#: SPEC CINT2006Rate task types (12), row order of Fig. 6.
CINT_TASKS: tuple[str, ...] = (
    "400.perlbench",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "445.gobmk",
    "456.hmmer",
    "458.sjeng",
    "462.libquantum",
    "464.h264ref",
    "471.omnetpp",
    "473.astar",
    "483.xalancbmk",
)

#: SPEC CFP2006Rate task types (17), row order of Fig. 7.
CFP_TASKS: tuple[str, ...] = (
    "410.bwaves",
    "416.gamess",
    "433.milc",
    "434.zeusmp",
    "435.gromacs",
    "436.cactusADM",
    "437.leslie3d",
    "444.namd",
    "447.dealII",
    "450.soplex",
    "453.povray",
    "454.calculix",
    "459.GemsFDTD",
    "465.tonto",
    "470.lbm",
    "481.wrf",
    "482.sphinx3",
)

# 12 x 5 reconstructed CINT2006Rate peak runtimes (seconds).
_CINT = [
    [227.1, 315.0, 350.4, 393.1, 392.0],
    [163.5, 197.2, 263.4, 424.6, 375.3],
    [498.0, 603.9, 567.9, 862.7, 863.6],
    [402.5, 414.7, 428.7, 675.3, 690.4],
    [275.1, 289.4, 378.6, 426.5, 435.8],
    [454.0, 481.1, 578.7, 772.0, 900.4],
    [244.7, 390.0, 454.7, 527.7, 486.5],
    [455.7, 733.1, 779.0, 1117.2, 994.3],
    [162.1, 200.0, 258.4, 304.3, 295.4],
    [173.2, 308.1, 321.4, 1939.9, 227.5],
    [353.5, 442.8, 585.1, 880.0, 691.8],
    [190.9, 209.0, 265.2, 420.7, 401.5],
]

# 17 x 5 reconstructed CFP2006Rate peak runtimes (seconds).
_CFP = [
    [2571.6, 5305.6, 6291.0, 3539.3, 3162.2],
    [1549.8, 2318.2, 2832.3, 1156.2, 1407.4],
    [858.5, 2442.9, 1808.2, 990.6, 1187.4],
    [2165.2, 5112.1, 2834.8, 2394.2, 2136.1],
    [2589.1, 1954.5, 1871.9, 1505.0, 1706.5],
    [4792.1, 1294.3, 1584.6, 14529.5, 1394.9],
    [3306.7, 2819.2, 3683.9, 4184.8, 3278.6],
    [3837.2, 4651.3, 3087.6, 2591.8, 2338.4],
    [2742.0, 5610.2, 2522.8, 3251.7, 2109.0],
    [2262.0, 10883.5, 5678.1, 428.6, 3890.8],
    [4712.7, 6849.5, 2763.0, 3442.0, 4338.2],
    [6662.6, 11939.1, 6412.7, 3523.5, 5007.9],
    [1627.5, 2512.4, 1536.1, 799.6, 1573.4],
    [2647.3, 3740.8, 4777.2, 1296.5, 2024.6],
    [6413.4, 8069.5, 5789.0, 3500.2, 2770.0],
    [7127.2, 6248.4, 6216.6, 4215.8, 3423.2],
    [3840.9, 4492.0, 4276.6, 2889.5, 1817.9],
]

_MACHINE_SHORT = ("m1", "m2", "m3", "m4", "m5")


def cint2006rate():
    """The CINT2006Rate-like 12 × 5 ETC matrix (paper Fig. 6).

    Returns a fresh :class:`~repro.core.ETCMatrix` labelled with the
    SPEC task names and short machine names ``m1..m5``.
    """
    from ..core.environment import ETCMatrix

    return ETCMatrix(
        np.asarray(_CINT, dtype=np.float64),
        task_names=CINT_TASKS,
        machine_names=_MACHINE_SHORT,
    )


def cfp2006rate():
    """The CFP2006Rate-like 17 × 5 ETC matrix (paper Fig. 7)."""
    from ..core.environment import ETCMatrix

    return ETCMatrix(
        np.asarray(_CFP, dtype=np.float64),
        task_names=CFP_TASKS,
        machine_names=_MACHINE_SHORT,
    )
