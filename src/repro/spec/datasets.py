"""Dataset accessors and the paper's Fig. 8 submatrix extractions."""

from __future__ import annotations

from ..core.environment import ETCMatrix
from ..exceptions import DatasetError
from .data import cfp2006rate, cint2006rate

__all__ = ["list_datasets", "load_dataset", "figure8a", "figure8b"]

_DATASETS = {
    "cint2006rate": cint2006rate,
    "cfp2006rate": cfp2006rate,
}


def list_datasets() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset`."""
    return tuple(sorted(_DATASETS))


def load_dataset(name: str) -> ETCMatrix:
    """Load a bundled evaluation environment by name.

    Examples
    --------
    >>> load_dataset("cint2006rate").shape
    (12, 5)
    """
    try:
        factory = _DATASETS[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        ) from None
    return factory()


def figure8a() -> ETCMatrix:
    """Paper Fig. 8(a): {omnetpp, cactusADM} × {m4, m5}.

    omnetpp comes from the CINT table and cactusADM from the CFP
    table (the paper mixes the suites for this illustration).  The
    submatrix has near-flat affinity (TMA ≈ 0.05) but very
    heterogeneous task difficulty (TDH ≈ 0.16).
    """
    cint = cint2006rate()
    cfp = cfp2006rate()
    om = cint.submatrix(tasks=["471.omnetpp"], machines=["m4", "m5"])
    ca = cfp.submatrix(tasks=["436.cactusADM"], machines=["m4", "m5"])
    return om.add_task("436.cactusADM", ca.values[0])


def figure8b() -> ETCMatrix:
    """Paper Fig. 8(b): {cactusADM, soplex} × {m1, m4}.

    Opposite machine affinities for the two task types produce the
    paper's high TMA (≈ 0.60) while machine performance homogeneity
    stays comparable to Fig. 8(a).
    """
    cfp = cfp2006rate()
    return cfp.submatrix(
        tasks=["436.cactusADM", "450.soplex"], machines=["m1", "m4"]
    )
