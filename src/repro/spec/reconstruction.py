"""Deterministic reconstruction of the SPEC-like evaluation tables.

The procedure (run once; its rounded output is frozen in
:mod:`repro.spec.data`, and the test suite asserts the regeneration
matches bit-for-bit):

1. **Measure-exact cores.**  :func:`repro.generate.from_targets` builds
   12 × 5 and 17 × 5 ECS matrices whose (MPH, TDH, TMA) equal the
   values the paper reports for CINT and CFP, with randomized
   (seeded) margin ratios and affinity jitter so the tables look like
   data rather than geometry.
2. **Fig. 8(b) affinity injection.**  The 2 × 2 TMA of a submatrix
   depends only on its multiplicative cross ratio, which full-matrix
   row/column scalings cannot change; the cactusADM/soplex × m1/m4
   cross ratio is therefore set *before* the final margin scaling so
   that the submatrix TMA is 0.60 while the full-matrix margins stay
   measure-exact.
3. **Margin scaling.**  Row/column margins with exact adjacent-ratio
   means (0.90/0.82 for CINT, 0.91/0.83 for CFP) are imposed by
   :func:`repro.normalize.scale_to_margins`; by Theorem 1 this leaves
   every cross ratio — and hence TMA — untouched.
4. **Unit calibration.**  Each ECS matrix is converted to ETC and
   scaled (one global factor per suite, which changes no measure) into
   the second-scale range of real SPEC CPU2006 rate peak runtimes; the
   CFP factor is chosen so that the Fig. 8(a) task-difficulty ratio is
   the paper's 0.16.
5. **Fig. 8(a) affinity trim.**  A final multiplicative tweak to
   omnetpp's m4/m5 pair pins the Fig. 8(a) cross ratio to TMA = 0.05
   (a one-row perturbation; the CINT measures move by < 0.005 and the
   achieved values are what EXPERIMENTS.md reports).
6. **Rounding.**  Runtimes are rounded to 0.1 s like published SPEC
   tables.
"""

from __future__ import annotations

import numpy as np

from ..generate._rng import resolve_rng
from ..generate.target_driven import _bisect_theta
from ..normalize.sinkhorn import scale_to_margins

__all__ = [
    "reconstruct_cint",
    "reconstruct_cfp",
    "reconstruct_tables",
    "CINT_SEED",
    "CFP_SEED",
]

#: Frozen seeds of the shipped tables (see repro.spec.data).
CINT_SEED = 20110516
CFP_SEED = 20110517

#: Paper-reported targets (Figs. 6-8).
CINT_TARGETS = {"mph": 0.82, "tdh": 0.90, "tma": 0.07}
CFP_TARGETS = {"mph": 0.83, "tdh": 0.91, "tma": 0.12}
FIG8B_TMA = 0.60
FIG8A_TMA = 0.05
FIG8A_TDH = 0.16
#: The paper states Fig. 8(a)'s task types are *more* homogeneous than
#: Fig. 8(b)'s, so TDH(b) must land below 0.16.
FIG8B_TDH = 0.10

#: Row/column indices used by the Fig. 8 constraints.
_CINT_OMNETPP = 9   # row in the CINT table
_CFP_CACTUS = 5     # rows in the CFP table
_CFP_SOPLEX = 9
_M1, _M4, _M5 = 0, 3, 4


def _margins_with_mean_ratio(
    count: int, mean_ratio: float, rng, *, spread: float = 0.35
) -> np.ndarray:
    """Ascending margins whose adjacent ratios *average* ``mean_ratio``.

    Unlike the geometric margins of
    :func:`repro.generate.margins_for_homogeneity`, the individual
    ratios are randomized (then one of them adjusted to restore the
    exact mean) so that the resulting performance/difficulty profile
    looks like measured data while MPH/TDH stay exact.
    """
    if count == 1:
        return np.ones(1)
    ratios = np.clip(
        mean_ratio + rng.uniform(-spread, spread, size=count - 1) * (1 - mean_ratio),
        0.05,
        1.0,
    )
    # Repair the mean exactly by shifting the ratio with the most slack.
    for _ in range(64):
        err = ratios.mean() - mean_ratio
        if abs(err) < 1e-15:
            break
        adjust = err * (count - 1)
        order = np.argsort(ratios) if err < 0 else np.argsort(-ratios)
        for idx in order:
            lo, hi = 0.05, 1.0
            room = (ratios[idx] - lo) if adjust > 0 else (hi - ratios[idx])
            step = np.clip(adjust, -room, room) if adjust < 0 else min(adjust, room)
            ratios[idx] -= step
            adjust -= step
            if abs(adjust) < 1e-18:
                break
    values = np.ones(count)
    for k in range(count - 2, -1, -1):
        values[k] = values[k + 1] * ratios[k]
    return values


def _cross_ratio(ecs: np.ndarray, rows, cols) -> float:
    """Multiplicative cross ratio ``(a*d)/(b*c)`` of a 2×2 submatrix."""
    (r1, r2), (c1, c2) = rows, cols
    return float(
        (ecs[r1, c1] * ecs[r2, c2]) / (ecs[r1, c2] * ecs[r2, c1])
    )


def cross_ratio_for_tma(target_tma: float) -> float:
    """Cross ratio that yields a 2×2 standard-form TMA of ``target_tma``.

    The standard form of a positive 2×2 matrix is
    ``[[a, 1-a], [1-a, a]]`` whose non-maximum singular value is
    ``|2a - 1|``; solving for the cross ratio gives
    ``((1 + t) / (1 - t)) ** 2``.
    """
    if not 0.0 <= target_tma < 1.0:
        raise ValueError("2x2 TMA target must be in [0, 1)")
    return ((1.0 + target_tma) / (1.0 - target_tma)) ** 2


def _inject_cross_ratio(
    ecs: np.ndarray, rows, cols, target_ratio: float
) -> None:
    """Scale the four submatrix entries so their cross ratio hits the
    target, spreading the adjustment evenly to limit the disturbance."""
    current = _cross_ratio(ecs, rows, cols)
    factor = (target_ratio / current) ** 0.25
    (r1, r2), (c1, c2) = rows, cols
    ecs[r1, c1] *= factor
    ecs[r2, c2] *= factor
    ecs[r1, c2] /= factor
    ecs[r2, c1] /= factor


def _build_suite(
    n_tasks: int,
    targets: dict,
    seed: int,
    inject: list | None = None,
    row_shift: dict | None = None,
) -> np.ndarray:
    """Steps 1-3: affinity core + optional injections + exact margins.

    ``inject`` is a list of ``(rows, cols, cross_ratio)`` constraints;
    ``row_shift`` maps ``row -> (cols, factor)`` and multiplies the
    row's core entries at those columns by the factor.  A row shift
    redistributes a task's speed *within* its row, which the margin
    scaling cannot see (row sums are re-imposed) and which preserves
    every 2×2 cross ratio whose rows it scales uniformly — the knob
    used to pin the Fig. 8(b) restricted task-difficulty ratio.
    """
    rng = resolve_rng(seed)
    core = _bisect_theta(
        n_tasks, 5, targets["tma"], jitter=0.45,
        seed=int(rng.integers(0, 2**63 - 1)), tol=1e-9,
    )
    if inject:
        for rows, cols, ratio in inject:
            _inject_cross_ratio(core, rows, cols, ratio)
    if row_shift:
        for row, (cols, factor) in row_shift.items():
            core[row, list(cols)] *= factor
    total = float(n_tasks * 5)
    row_margins = _margins_with_mean_ratio(n_tasks, targets["tdh"], rng)
    col_margins = _margins_with_mean_ratio(5, targets["mph"], rng)
    row_margins *= total / row_margins.sum()
    col_margins *= total / col_margins.sum()
    # Shuffle margins so performance is not monotone in machine index
    # (real machine line-ups are not sorted by speed).
    rng.shuffle(row_margins)
    rng.shuffle(col_margins)
    matrix = scale_to_margins(core, row_margins, col_margins, tol=1e-12).matrix
    return matrix, row_margins, col_margins


def _cfp_stage() -> np.ndarray:
    """CFP ECS matrix (unscaled): exact margins, Fig. 8(b) TMA cross
    ratio injected, and the within-row shift bisected so the restricted
    cactusADM/soplex difficulty ratio equals ``FIG8B_TDH``."""
    inject = [
        (
            (_CFP_CACTUS, _CFP_SOPLEX),
            (_M1, _M4),
            cross_ratio_for_tma(FIG8B_TMA),
        )
    ]

    def build(lam: float) -> tuple[float, np.ndarray]:
        shift = {
            _CFP_CACTUS: ((_M1, _M4), lam),
            _CFP_SOPLEX: ((_M1, _M4), 1.0 / lam),
        }
        ecs, _, _ = _build_suite(
            17, CFP_TARGETS, CFP_SEED, inject=inject, row_shift=shift
        )
        restricted = ecs[[_CFP_CACTUS, _CFP_SOPLEX]][:, [_M1, _M4]]
        sums = restricted.sum(axis=1)
        return float(sums.min() / sums.max()), ecs

    lo, hi = 0.02, 1.0
    ecs = None
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        value, ecs = build(mid)
        if abs(value - FIG8B_TDH) < 1e-9:
            break
        if value > FIG8B_TDH:
            hi = mid
        else:
            lo = mid
    return ecs


def _finalize(tau: float, cfp_ecs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Steps 4-5 as a joint fixpoint.

    Builds the CINT suite with affinity level ``tau``, then alternates

    a. the CFP global scalar that pins Fig. 8(a)'s TDH to 0.16,
    b. a task-difficulty-preserving redistribution of omnetpp's m4/m5
       speeds that pins Fig. 8(a)'s cross ratio (TMA = 0.05), and
    c. re-imposition of the exact CINT margins (which step b disturbs
       only through the m4/m5 column sums),

    until the Fig. 8(a) cross ratio is stationary.  MPH/TDH of both
    suites stay exact throughout; only the full-matrix CINT TMA drifts
    with the trim, which is what the outer bisection on ``tau``
    compensates.
    """
    cint_ecs, row_m, col_m = _build_suite(
        12, {**CINT_TARGETS, "tma": tau}, CINT_SEED
    )
    # Fold the realism scale into the margins: median peak runtime of
    # the suite ~420 s (a global factor changes no measure).
    beta = np.median(1.0 / cint_ecs) / 420.0
    cint_ecs = cint_ecs * beta
    row_m = row_m * beta
    col_m = col_m * beta

    cfp_etc = 1.0 / cfp_ecs
    target_cr = cross_ratio_for_tma(FIG8A_TMA)
    for _ in range(80):
        # (a) CFP scalar: Fig. 8(a) TDH (cactus vs omnetpp over m4/m5).
        om_speed = cint_ecs[_CINT_OMNETPP, _M4] + cint_ecs[_CINT_OMNETPP, _M5]
        ca_speed = 1.0 / cfp_etc[_CFP_CACTUS, _M4] + 1.0 / cfp_etc[
            _CFP_CACTUS, _M5
        ]
        cfp_etc *= ca_speed / (FIG8A_TDH * om_speed)

        # (b) omnetpp trim: Fig. 8(a) cross ratio, preserving om's TD.
        s4 = cint_ecs[_CINT_OMNETPP, _M4]
        s5 = cint_ecs[_CINT_OMNETPP, _M5]
        ca4 = 1.0 / cfp_etc[_CFP_CACTUS, _M4]
        ca5 = 1.0 / cfp_etc[_CFP_CACTUS, _M5]
        current = (s4 * ca5) / (s5 * ca4)
        # Both target_cr and 1/target_cr give the same 2x2 TMA; use the
        # branch nearer the current ratio to minimise the disturbance.
        goal = target_cr if current >= 1.0 else 1.0 / target_cr
        if abs(np.log(current / goal)) < 1e-12:
            break
        q = (s4 / s5) * (goal / current)   # required s4'/s5'
        s5_new = (s4 + s5) / (1.0 + q)
        cint_ecs = cint_ecs.copy()
        cint_ecs[_CINT_OMNETPP, _M4] = q * s5_new
        cint_ecs[_CINT_OMNETPP, _M5] = s5_new

        # (c) exact margins back onto CINT.
        cint_ecs = scale_to_margins(cint_ecs, row_m, col_m, tol=1e-13).matrix
    return 1.0 / cint_ecs, cfp_etc


def reconstruct_tables() -> tuple[np.ndarray, np.ndarray]:
    """Full pipeline: the (CINT, CFP) ETC tables shipped in data.py.

    The outer bisection tunes the CINT core affinity so the *final*
    full-matrix TMA (after the Fig. 8(a) trim) equals the paper's 0.07.
    """
    cfp_ecs = _cfp_stage()
    from ..measures.affinity import tma as _tma_measure

    lo, hi = 0.005, 0.15
    cint_etc = cfp_etc = None
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        cint_etc, cfp_etc = _finalize(mid, cfp_ecs)
        achieved = _tma_measure(1.0 / cint_etc)
        if abs(achieved - CINT_TARGETS["tma"]) < 1e-7:
            break
        if achieved < CINT_TARGETS["tma"]:
            lo = mid
        else:
            hi = mid
    return np.round(cint_etc, 1), np.round(cfp_etc, 1)
