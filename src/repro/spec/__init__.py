"""SPEC CPU2006Rate-derived evaluation environments (paper Section V).

The paper extracts peak-runtime ETC matrices for the 12 SPEC
CINT2006Rate and 17 SPEC CFP2006Rate task types on five machines
(Fig. 5).  The published tables are not redistributable here (and this
build environment has no network access to spec.org), so this package
ships **reconstructed** tables: synthetic peak runtimes with realistic
magnitudes, *calibrated so that the paper's reported measure values are
reproduced* —

* CINT: TDH = 0.90, MPH = 0.82, TMA = 0.07 (Fig. 6),
* CFP:  TDH = 0.91, MPH = 0.83, TMA > TMA(CINT) (Fig. 7),
* Fig. 8(a) {omnetpp, cactusADM} × {m4, m5}: TMA ≈ 0.05, TDH ≈ 0.16,
* Fig. 8(b) {cactusADM, soplex} × {m1, m4}: TMA ≈ 0.60.

Every experiment consumes the tables only through the ETC → ECS →
measures pipeline, so matching the reported measures (and second-scale
magnitudes) preserves the paper's qualitative behaviour exactly; see
DESIGN.md "Substitutions".  :mod:`repro.spec.reconstruction` contains
the deterministic procedure that generated the tables, and the test
suite asserts the shipped data regenerates bit-for-bit.
"""

from .data import (
    MACHINES,
    CINT_TASKS,
    CFP_TASKS,
    cint2006rate,
    cfp2006rate,
)
from .datasets import (
    list_datasets,
    load_dataset,
    figure8a,
    figure8b,
)
from .machines import MachineInfo, machine_info, MACHINE_INFO

__all__ = [
    "MACHINES",
    "CINT_TASKS",
    "CFP_TASKS",
    "cint2006rate",
    "cfp2006rate",
    "list_datasets",
    "load_dataset",
    "figure8a",
    "figure8b",
    "MachineInfo",
    "machine_info",
    "MACHINE_INFO",
]
