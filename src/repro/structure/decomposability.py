"""Full indecomposability and block-form certificates (Section VI).

A square non-negative matrix ``A`` is *decomposable* when permutation
matrices ``P`` and ``Q`` exist with::

    P A Q = [[A11,   0],
             [A21, A22]]          (paper eq. 11)

for square ``A11`` and ``A22`` — equivalently, when some ``k`` rows and
``n - k`` columns meet in an all-zero submatrix.  *Fully indecomposable*
means no such block form exists.  Marshall & Olkin showed full
indecomposability is sufficient (not necessary — diagonal matrices are
the paper's counterexample) for row/column normalizability.

Combinatorics used here:

* ``A`` (square) is partly decomposable iff some nonempty proper column
  set ``S`` has neighbourhood ``|N(S)| <= |S|``; the complement rows of
  ``N(S)`` against ``S`` form the zero block.
* ``A`` is fully indecomposable iff it has total support **and** its
  bipartite graph is connected (Brualdi–Ryser); the expensive
  per-minor definition (``per(A(i|j)) > 0`` for all ``i, j``) is kept in
  the test suite as an independent oracle.
* A rectangular ``m × n`` matrix with ``m < n`` is fully indecomposable
  iff every ``m × m`` submatrix is (the paper's definition); matrices
  with ``m > n`` are transposed first.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
import networkx as nx

from ..exceptions import MatrixShapeError
from .patterns import (
    _bipartite_graph,
    _maximum_matching,
    has_total_support,
    support_pattern,
)

__all__ = [
    "is_fully_indecomposable",
    "find_zero_block",
    "permute_to_block_form",
    "BlockForm",
]

#: Largest rectangular minor count we will enumerate for the paper's
#: every-square-submatrix definition before refusing.
_MAX_MINORS = 200_000


def _square_fully_indecomposable(pattern: np.ndarray) -> bool:
    if pattern.shape[0] == 1:
        return bool(pattern[0, 0])
    if not has_total_support(pattern):
        return False
    return nx.is_connected(_bipartite_graph(pattern))


def is_fully_indecomposable(matrix) -> bool:
    """True when no permutation exposes the block form of eq. 11.

    Rectangular matrices follow the paper's Section VI definition: with
    ``m < n``, every ``m × m`` submatrix must be fully indecomposable
    (``m > n`` is handled by transposing).  Enumeration of
    ``C(n, m)`` minors is refused beyond ``200_000`` combinations —
    use :func:`repro.structure.is_normalizable` for the scalable exact
    normalizability test instead.
    """
    pattern = support_pattern(matrix)
    n_rows, n_cols = pattern.shape
    if n_rows == n_cols:
        return _square_fully_indecomposable(pattern)
    if n_rows > n_cols:
        pattern = pattern.T
        n_rows, n_cols = n_cols, n_rows
    from math import comb

    if comb(n_cols, n_rows) > _MAX_MINORS:
        raise MatrixShapeError(
            f"every-square-submatrix test would enumerate "
            f"C({n_cols},{n_rows}) minors; use is_normalizable() instead"
        )
    return all(
        _square_fully_indecomposable(pattern[:, list(cols)])
        for cols in combinations(range(n_cols), n_rows)
    )


def find_zero_block(matrix) -> tuple[list[int], list[int]] | None:
    """Find rows R and columns C with ``A[R, C] == 0`` and
    ``|R| + |C| == n`` (a certificate of decomposability).

    Square matrices only.  Returns ``None`` when the matrix is fully
    indecomposable.  The search uses the Hall-violator structure: it
    looks for a nonempty proper column set ``S`` with ``|N(S)| <= |S|``
    and returns ``R = rows \\ N(S)`` (padded from the zero rows of ``S``
    if the inequality is strict) against ``C = S``.

    Implementation: for every seed column ``j`` the minimal candidate is
    grown by alternating closure — a column enters ``S`` when adding it
    does not grow ``N(S)`` past ``|S|``.  For the matrix sizes this
    library targets (tens of machines) the ``O(n^2)``-ish closure is
    immediate; an exact polynomial algorithm via maximum matching is
    used when closure fails to certify.
    """
    pattern = support_pattern(matrix)
    n = pattern.shape[0]
    if pattern.shape[0] != pattern.shape[1]:
        raise MatrixShapeError(
            "find_zero_block expects a square matrix; rectangular "
            f"shape {pattern.shape} given"
        )
    if n == 1:
        return None if pattern[0, 0] else ([0], [0])

    # A zero block of size k x (n - k) exists iff there is a column set
    # C (|C| = n - k) whose rows-with-support N(C) satisfy
    # |N(C)| <= n - |R| = k' ... equivalently some column set S with
    # |N(S)| + |S| <= n.  Search exactly via matching on an auxiliary
    # graph: for each candidate size this is Hall's condition on the
    # bipartite graph where column j connects to rows it touches, asking
    # for a violator of |N(S)| >= |S| + 1.  We find it by testing, for
    # each (row r, column c) pair, whether deleting row r and column c
    # leaves a graph with a perfect matching; a missing matching yields
    # a violator by König's theorem.
    for r in range(n):
        for c in range(n):
            sub = np.delete(np.delete(pattern, r, axis=0), c, axis=1)
            match = _maximum_matching(sub)
            if len(match) < n - 1:
                # König: a vertex cover of size < n - 1 exists in the
                # minor; recover a Hall violator among its columns.
                cols_keep = [j for j in range(n) if j != c]
                violator = _hall_violator(sub)
                if violator is None:  # pragma: no cover - defensive
                    continue
                col_set = [cols_keep[j] for j in violator]
                neigh = set(
                    int(i) for i in np.nonzero(pattern[:, col_set].any(axis=1))[0]
                )
                row_set = [i for i in range(n) if i not in neigh]
                # Trim to |R| + |C| == n while keeping the block zero
                # (any subset of a zero block is a zero block).
                while len(row_set) + len(col_set) > n:
                    if len(row_set) > 1:
                        row_set.pop()
                    else:
                        col_set.pop()
                if len(row_set) + len(col_set) == n and row_set and col_set:
                    assert not pattern[np.ix_(row_set, col_set)].any()
                    return sorted(row_set), sorted(col_set)
    return None


def _hall_violator(pattern: np.ndarray) -> list[int] | None:
    """Columns S with |N(S)| < |S| in a (possibly rectangular) pattern.

    Found from a maximum matching: start from the unmatched columns and
    alternate (column → its rows → rows' matched columns); the reachable
    columns form a maximal violator when any column is unmatched.
    """
    n_rows, n_cols = pattern.shape
    match = _maximum_matching(pattern)  # row -> col
    col_to_row = {col: row for row, col in match.items()}
    unmatched = [j for j in range(n_cols) if j not in col_to_row]
    if not unmatched:
        return None
    seen_cols = set(unmatched)
    seen_rows: set[int] = set()
    frontier = list(unmatched)
    while frontier:
        j = frontier.pop()
        for i in np.nonzero(pattern[:, j])[0]:
            i = int(i)
            if i in seen_rows:
                continue
            seen_rows.add(i)
            mate = match.get(i)
            if mate is not None and mate not in seen_cols:
                seen_cols.add(mate)
                frontier.append(mate)
    violator = sorted(seen_cols)
    neigh = set(
        int(i) for i in np.nonzero(pattern[:, violator].any(axis=1))[0]
    )
    if len(neigh) < len(violator):
        return violator
    return None


@dataclass(frozen=True)
class BlockForm:
    """A permutation certificate for decomposability (paper eq. 12).

    ``matrix[np.ix_(row_order, col_order)]`` has an all-zero upper-right
    block: the first ``block_size`` rows meet the last
    ``n - block_size`` columns in zeros only, exhibiting eq. 11 with
    ``A11`` of size ``block_size``.
    """

    row_order: tuple[int, ...]
    col_order: tuple[int, ...]
    block_size: int

    def apply(self, matrix) -> np.ndarray:
        """Return the permuted matrix ``P A Q`` in block form."""
        arr = np.asarray(matrix)
        return arr[np.ix_(list(self.row_order), list(self.col_order))]


def permute_to_block_form(matrix) -> BlockForm | None:
    """Produce the eq.-11 block form of a decomposable square matrix.

    Returns ``None`` for fully indecomposable matrices.  For the paper's
    eq. 10 example the certificate reproduces the "move the last column
    to the front" transformation of eq. 12 (up to an equivalent
    permutation).
    """
    block = find_zero_block(matrix)
    if block is None:
        return None
    rows_zero, cols_zero = block
    n = np.asarray(matrix).shape[0]
    other_rows = [i for i in range(n) if i not in rows_zero]
    other_cols = [j for j in range(n) if j not in cols_zero]
    # Zero block occupies rows_zero x cols_zero.  Put those rows first
    # and those columns last: upper-right block (size |rows_zero| x
    # |cols_zero|) is zero and |rows_zero| + |cols_zero| == n makes A11
    # square of size |rows_zero|.
    row_order = tuple(rows_zero + other_rows)
    col_order = tuple(other_cols + cols_zero)
    return BlockForm(
        row_order=row_order,
        col_order=col_order,
        block_size=len(rows_zero),
    )
