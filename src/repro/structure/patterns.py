"""Support structure of non-negative matrices.

A square non-negative matrix *has support* when some permutation puts a
positive entry on every diagonal position (equivalently: its bipartite
row/column graph has a perfect matching).  It has *total support* when
every positive entry lies on such a positive diagonal.  Sinkhorn &
Knopp's classical theorem ties these to the convergence of the
alternating-scaling iteration; the paper's Section VI counterexample
(eq. 10) has support but not total support.

Algorithms: Hopcroft–Karp maximum matching for support, and the
standard matching-plus-strongly-connected-components construction for
the total-support pattern (an entry ``(i, j)`` lies on a positive
diagonal iff it is in the matching or its endpoints share a strongly
connected component of the exchange digraph).
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..exceptions import MatrixShapeError

__all__ = [
    "support_pattern",
    "has_support",
    "has_total_support",
    "total_support_pattern",
]


def support_pattern(matrix) -> np.ndarray:
    """Boolean zero/nonzero pattern of a matrix (True where nonzero)."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.size == 0:
        raise MatrixShapeError("pattern requires a non-empty 2-D matrix")
    if arr.dtype == np.bool_:
        return arr.copy()
    return arr != 0


def _bipartite_graph(pattern: np.ndarray) -> nx.Graph:
    """Bipartite graph with rows as ``("r", i)`` and columns ``("c", j)``."""
    graph = nx.Graph()
    n_rows, n_cols = pattern.shape
    graph.add_nodes_from(("r", i) for i in range(n_rows))
    graph.add_nodes_from(("c", j) for j in range(n_cols))
    rows, cols = np.nonzero(pattern)
    graph.add_edges_from(
        (("r", int(i)), ("c", int(j))) for i, j in zip(rows, cols)
    )
    return graph


def _maximum_matching(pattern: np.ndarray) -> dict[int, int]:
    """Row→column maximum matching of the pattern's bipartite graph."""
    graph = _bipartite_graph(pattern)
    top = {("r", i) for i in range(pattern.shape[0])}
    matching = nx.bipartite.hopcroft_karp_matching(graph, top_nodes=top)
    return {
        node[1]: mate[1]
        for node, mate in matching.items()
        if node[0] == "r"
    }


def has_support(matrix) -> bool:
    """True when the matrix has a positive diagonal.

    For a square matrix this is the classical "support" of
    Sinkhorn–Knopp: some permutation ``σ`` has ``A[i, σ(i)] > 0`` for
    every ``i``.  For a T × M rectangular matrix the condition becomes a
    matching that saturates the smaller side (every row matched when
    T ≤ M, every column when M ≤ T).
    """
    pattern = support_pattern(matrix)
    match = _maximum_matching(pattern)
    return len(match) == min(pattern.shape)


def total_support_pattern(matrix) -> np.ndarray:
    """Boolean mask of the entries that lie on some positive diagonal.

    Only defined for square matrices (positive diagonals are
    permutations).  If the matrix has no support at all, no entry lies
    on a positive diagonal and the all-False mask is returned.

    Notes
    -----
    Construction: fix one perfect matching ``m`` (column matched to row
    ``row_of[j]``).  Build the exchange digraph on column indices with
    an edge ``j → k`` whenever ``A[row_of[j], k] != 0``.  An off-matching
    entry ``(row_of[j], k)`` lies on a positive diagonal iff ``k`` can
    reach ``j`` — i.e. ``j`` and ``k`` share a strongly connected
    component once the matching edges (self-loops) are present.
    """
    pattern = support_pattern(matrix)
    n_rows, n_cols = pattern.shape
    if n_rows != n_cols:
        raise MatrixShapeError(
            "total support is defined for square matrices; got shape "
            f"{pattern.shape}"
        )
    match = _maximum_matching(pattern)
    if len(match) < n_rows:
        return np.zeros_like(pattern, dtype=bool)
    row_of_col = {col: row for row, col in match.items()}
    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(n_cols))
    for j in range(n_cols):
        row = row_of_col[j]
        for k in np.nonzero(pattern[row])[0]:
            if int(k) != j:
                digraph.add_edge(j, int(k))
    component_of: dict[int, int] = {}
    for comp_id, comp in enumerate(nx.strongly_connected_components(digraph)):
        for node in comp:
            component_of[node] = comp_id
    mask = np.zeros_like(pattern, dtype=bool)
    for j in range(n_cols):
        row = row_of_col[j]
        mask[row, j] = True  # matching entries always qualify
        for k in np.nonzero(pattern[row])[0]:
            k = int(k)
            if k != j and component_of[j] == component_of[k]:
                mask[row, k] = True
    return mask


def has_total_support(matrix) -> bool:
    """True when every nonzero entry lies on some positive diagonal.

    Square matrices only.  Total support is exactly the Sinkhorn–Knopp
    condition for a square matrix to be scalable to doubly stochastic
    form with its zero pattern preserved — the paper's eq. 10 matrix has
    support but *not* total support, which is why its normalization
    fails.
    """
    pattern = support_pattern(matrix)
    if not pattern.any():
        return False
    return bool((total_support_pattern(pattern) == pattern).all())
