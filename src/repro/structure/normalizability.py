"""Exact normalizability test (Menon's theorem via transportation flows).

The paper's Section VI gives *full indecomposability* as a sufficient —
but, as the diagonal-matrix example shows, not necessary — condition for
an equal-row-sum/equal-column-sum scaling ``D1 A D2`` to exist.  The
exact characterization (Menon 1968; Brualdi's convex-polytope analysis)
is:

    diagonal matrices ``D1, D2`` with ``D1 A D2`` having row sums ``r``
    and column sums ``c`` exist **iff** some non-negative matrix ``B``
    with *exactly* the zero pattern of ``A`` has those row/column sums.

Existence of such a ``B`` is a transportation problem: supplies ``r``
at the rows, demands ``c`` at the columns, edges only where ``A`` is
nonzero.  ``B`` must be strictly positive on every edge; because the
feasible set is convex, that holds iff (a) the transportation problem
is feasible at all and (b) *every* edge individually carries positive
flow in at least one feasible solution — checked in one pass from the
strongly connected components of the residual graph of any maximum
flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import networkx as nx

from .patterns import support_pattern

__all__ = ["is_normalizable", "normalizability_report", "NormalizabilityReport"]


@dataclass(frozen=True)
class NormalizabilityReport:
    """Outcome of the exact normalizability test.

    Attributes
    ----------
    normalizable : bool
        True when a scaling to equal row sums and equal column sums
        exists with the matrix's zero pattern preserved.
    feasible : bool
        True when the transportation problem (ignore strict positivity)
        is feasible; ``normalizable`` implies ``feasible``.
    blocking_edges : tuple of (int, int)
        Pattern positions that can never carry positive flow in any
        feasible solution — the entries whose forced-to-zero status
        breaks normalizability (the paper's eq. 10 matrix has exactly
        one: the entry shared by the heavy row and heavy column).
    """

    normalizable: bool
    feasible: bool
    blocking_edges: tuple[tuple[int, int], ...]


def _transportation_network(
    pattern: np.ndarray,
) -> tuple[nx.DiGraph, int]:
    """Build source→rows→cols→sink network with integer capacities.

    Row supplies are ``M`` units each and column demands ``T`` units
    each (both scaled), the smallest integer margins consistent with
    equal row sums and equal column sums.
    """
    n_rows, n_cols = pattern.shape
    # Integer margins: every row supplies M units, every column demands
    # T units, so the grand totals agree exactly (T*M each way) and the
    # max-flow is computed in exact integer arithmetic.
    row_cap = n_cols
    col_cap = n_rows
    graph = nx.DiGraph()
    for i in range(n_rows):
        graph.add_edge("s", ("r", i), capacity=row_cap)
    for j in range(n_cols):
        graph.add_edge(("c", j), "t", capacity=col_cap)
    rows, cols = np.nonzero(pattern)
    for i, j in zip(rows, cols):
        # Pattern edges are effectively uncapacitated.
        graph.add_edge(("r", int(i)), ("c", int(j)),
                       capacity=n_rows * row_cap)
    return graph, n_rows * row_cap


def normalizability_report(matrix) -> NormalizabilityReport:
    """Run the exact Menon-theorem test and return full diagnostics.

    Works for square and rectangular patterns alike and is polynomial
    (one max-flow plus one SCC pass), unlike the every-square-submatrix
    definition of full indecomposability.
    """
    pattern = support_pattern(matrix)
    if not pattern.any(axis=1).all() or not pattern.any(axis=0).all():
        # An all-zero row or column can never reach a positive sum.
        return NormalizabilityReport(
            normalizable=False,
            feasible=False,
            blocking_edges=(),
        )
    graph, total = _transportation_network(pattern)
    flow_value, flow = nx.maximum_flow(graph, "s", "t")
    if flow_value < total:
        return NormalizabilityReport(
            normalizable=False, feasible=False, blocking_edges=()
        )
    # Residual graph: forward edge when flow < capacity, backward when
    # flow > 0.  A zero-flow pattern edge (u, v) can carry positive flow
    # in some feasible solution iff v reaches u in the residual graph —
    # i.e. u and v share a strongly connected component (positive-flow
    # edges give the v→u residual arc directly, so they always qualify).
    residual = nx.DiGraph()
    for u, targets in flow.items():
        for v, f in targets.items():
            cap = graph[u][v]["capacity"]
            if f < cap:
                residual.add_edge(u, v)
            if f > 0:
                residual.add_edge(v, u)
    component_of: dict = {}
    for comp_id, comp in enumerate(nx.strongly_connected_components(residual)):
        for node in comp:
            component_of[node] = comp_id
    blocking: list[tuple[int, int]] = []
    rows, cols = np.nonzero(pattern)
    for i, j in zip(rows, cols):
        u, v = ("r", int(i)), ("c", int(j))
        if flow[u].get(v, 0) > 0:
            continue
        if component_of.get(u) != component_of.get(v):
            blocking.append((int(i), int(j)))
    return NormalizabilityReport(
        normalizable=not blocking,
        feasible=True,
        blocking_edges=tuple(blocking),
    )


def is_normalizable(matrix) -> bool:
    """True when ``D1 A D2`` with equal row sums and equal column sums
    exists (zero pattern preserved).

    This is the exact condition — it accepts the paper's
    diagonal-matrix exception (decomposable but normalizable) and
    rejects the eq. 10 counterexample.

    Examples
    --------
    >>> is_normalizable([[0, 0, 1], [1, 0, 1], [0, 1, 0]])   # paper eq. 10
    False
    >>> is_normalizable([[2, 0], [0, 5]])                    # diagonal
    True
    """
    return normalizability_report(matrix).normalizable
