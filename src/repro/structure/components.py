"""Decomposition into fully indecomposable components.

A square non-negative matrix with *total support* is, up to row/column
permutations, a direct sum of fully indecomposable blocks (Brualdi–
Ryser).  The blocks are the connected components of the bipartite
row/column graph restricted to the total-support pattern; each block
normalizes independently, so this decomposition explains *why* the
paper's diagonal-matrix example is normalizable despite being
decomposable: every 1×1 positive block trivially is.

For matrices without total support the decomposition is computed on
the total-support pattern (the entries that survive the eq.-9 limit);
entries outside it belong to no block.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import MatrixShapeError
from .patterns import (
    _bipartite_graph,
    has_support,
    support_pattern,
    total_support_pattern,
)

__all__ = ["IndecomposableComponents", "fully_indecomposable_components"]


@dataclass(frozen=True)
class IndecomposableComponents:
    """The direct-sum structure of a square pattern.

    Attributes
    ----------
    blocks : tuple of (tuple[int, ...], tuple[int, ...])
        (rows, columns) of each fully indecomposable block, sorted by
        smallest row index.  Every block has equally many rows and
        columns.
    dropped_entries : tuple of (int, int)
        Nonzero positions outside the total-support pattern — the
        entries the Sinkhorn limit forces to zero; empty when the
        matrix has total support.
    """

    blocks: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    dropped_entries: tuple[tuple[int, int], ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def permutation(self) -> tuple[np.ndarray, np.ndarray]:
        """Row/column orders exposing the block-diagonal form."""
        rows = np.concatenate([np.array(b[0], dtype=np.intp)
                               for b in self.blocks])
        cols = np.concatenate([np.array(b[1], dtype=np.intp)
                               for b in self.blocks])
        return rows, cols


def fully_indecomposable_components(matrix) -> IndecomposableComponents:
    """Split a square pattern into its fully indecomposable blocks.

    Raises
    ------
    MatrixShapeError
        For rectangular input, or square input with no support (no
        positive diagonal exists, so no block structure is defined).

    Examples
    --------
    >>> import numpy as np
    >>> comps = fully_indecomposable_components(np.diag([2.0, 3.0, 4.0]))
    >>> comps.n_blocks
    3
    >>> comps = fully_indecomposable_components(np.ones((3, 3)))
    >>> comps.n_blocks
    1
    """
    pattern = support_pattern(matrix)
    if pattern.shape[0] != pattern.shape[1]:
        raise MatrixShapeError(
            "component decomposition is defined for square matrices; got "
            f"shape {pattern.shape}"
        )
    if not has_support(pattern):
        raise MatrixShapeError(
            "matrix has no positive diagonal (no support); no "
            "fully indecomposable decomposition exists"
        )
    core = total_support_pattern(pattern)
    dropped = tuple(
        (int(i), int(j)) for i, j in zip(*np.nonzero(pattern & ~core))
    )
    graph = _bipartite_graph(core)
    blocks = []
    for component in nx.connected_components(graph):
        rows = tuple(sorted(idx for kind, idx in component if kind == "r"))
        cols = tuple(sorted(idx for kind, idx in component if kind == "c"))
        if rows or cols:
            blocks.append((rows, cols))
    blocks.sort(key=lambda b: b[0][0] if b[0] else -1)
    return IndecomposableComponents(
        blocks=tuple(blocks), dropped_entries=dropped
    )
