"""Zero-pattern structure analysis (paper Section VI).

When an ECS matrix contains zeros (incompatible task/machine pairs) the
standard form of Section III may not exist: the paper exhibits a 3 × 3
matrix (eq. 10) that no combination of row and column scalings can
normalize, and cites Marshall & Olkin's sufficient condition — *full
indecomposability* — for normalizability.

This package provides the exact combinatorial machinery:

* :func:`has_support` / :func:`has_total_support` — positive-diagonal
  structure (Sinkhorn–Knopp's classical conditions for square matrices).
* :func:`is_fully_indecomposable` — no ``k × (n-k)`` all-zero submatrix
  under any row/column permutation (eq. 11's block form is impossible);
  rectangular matrices use the paper's every-square-submatrix definition.
* :func:`is_normalizable` — the *exact* (necessary and sufficient)
  normalizability test via Menon's theorem, reduced to a transportation
  feasibility + edge-usability check on the zero pattern.  Handles the
  paper's diagonal-matrix caveat (decomposable yet normalizable).
* :func:`find_zero_block` / :func:`permute_to_block_form` — construct
  the certificate of decomposability (the paper's eq. 10 → eq. 12 move).
"""

from .patterns import (
    support_pattern,
    has_support,
    has_total_support,
    total_support_pattern,
)
from .decomposability import (
    is_fully_indecomposable,
    find_zero_block,
    permute_to_block_form,
    BlockForm,
)
from .normalizability import is_normalizable, normalizability_report, NormalizabilityReport
from .components import IndecomposableComponents, fully_indecomposable_components
from .repair import RepairPlan, suggest_repairs

__all__ = [
    "support_pattern",
    "has_support",
    "has_total_support",
    "total_support_pattern",
    "is_fully_indecomposable",
    "find_zero_block",
    "permute_to_block_form",
    "BlockForm",
    "is_normalizable",
    "normalizability_report",
    "NormalizabilityReport",
    "IndecomposableComponents",
    "fully_indecomposable_components",
    "RepairPlan",
    "suggest_repairs",
]
