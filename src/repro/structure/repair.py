"""Repairing non-normalizable zero patterns.

When an environment's zero pattern admits no standard form
(Section VI), a practitioner has two levers:

* **drop** the blocking compatibilities — the entries that can never
  carry weight in any equal-margin matrix anyway (this is exactly what
  the eq. 9 limit does implicitly), or
* **add** compatibilities — port a task type to a machine it currently
  cannot use — until the pattern becomes normalizable.

:func:`suggest_repairs` computes either plan.  Dropping is exact and
minimal by construction (the blocking set is unique).  Adding is a
greedy search: at each step the candidate zero entry whose inclusion
most reduces the number of blocking edges is chosen (ties broken by
position), which is not guaranteed minimum-cardinality but is exact in
the common single-bottleneck cases and always terminates with a
normalizable pattern (the all-ones pattern is).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MatrixValueError
from .normalizability import normalizability_report
from .patterns import support_pattern

__all__ = ["RepairPlan", "suggest_repairs"]

#: Candidate-evaluation budget for the greedy "add" strategy.
_MAX_GREEDY_STEPS = 64


@dataclass(frozen=True)
class RepairPlan:
    """A set of pattern edits that make the environment normalizable.

    Attributes
    ----------
    strategy : str
        ``"drop"`` or ``"add"``.
    entries : tuple of (int, int)
        Positions to zero out (drop) or to make compatible (add), in
        application order.
    already_normalizable : bool
        True when no edits were needed (``entries`` is empty).
    """

    strategy: str
    entries: tuple[tuple[int, int], ...]
    already_normalizable: bool

    def apply(self, matrix, *, fill: float = 1.0) -> np.ndarray:
        """Return a copy of ``matrix`` with the plan applied.

        Dropped entries become 0; added entries become ``fill`` (pick a
        plausible ECS speed for the new compatibility).
        """
        arr = np.array(matrix, dtype=np.float64, copy=True)
        for i, j in self.entries:
            arr[i, j] = 0.0 if self.strategy == "drop" else fill
        return arr


def suggest_repairs(matrix, *, strategy: str = "drop") -> RepairPlan:
    """Plan pattern edits that make ``matrix`` normalizable.

    Parameters
    ----------
    matrix : array-like
        Non-negative matrix (only the zero pattern matters).
    strategy : {"drop", "add"}
        ``"drop"`` removes the blocking entries (exact, unique);
        ``"add"`` proposes new task/machine compatibilities (greedy).

    Examples
    --------
    The paper's eq. 10 matrix needs exactly one edit either way:

    >>> eq10 = [[0, 0, 1], [1, 0, 1], [0, 1, 0]]
    >>> suggest_repairs(eq10, strategy="drop").entries
    ((1, 2),)
    >>> plan = suggest_repairs(eq10, strategy="add")
    >>> from repro.structure import is_normalizable
    >>> bool(is_normalizable(plan.apply(eq10)))
    True
    """
    if strategy not in ("drop", "add"):
        raise MatrixValueError(
            f"strategy must be 'drop' or 'add', got {strategy!r}"
        )
    pattern = support_pattern(matrix)
    report = normalizability_report(pattern)
    if report.normalizable:
        return RepairPlan(
            strategy=strategy, entries=(), already_normalizable=True
        )
    if strategy == "drop":
        if not report.feasible:
            raise MatrixValueError(
                "the pattern's margins are infeasible outright (no "
                "equal-sum matrix exists on any sub-pattern reachable by "
                "dropping entries); use strategy='add'"
            )
        return RepairPlan(
            strategy="drop",
            entries=report.blocking_edges,
            already_normalizable=False,
        )

    # Greedy "add": flip the zero entry that best reduces the blocking
    # count (infeasible patterns count every edge as blocking).
    work = pattern.copy()
    added: list[tuple[int, int]] = []

    def badness(p: np.ndarray) -> int:
        rep = normalizability_report(p)
        if rep.normalizable:
            return 0
        if not rep.feasible:
            return p.size + 1
        return len(rep.blocking_edges)

    current = badness(work)
    for _ in range(_MAX_GREEDY_STEPS):
        if current == 0:
            break
        zeros = np.argwhere(~work)
        best_entry = None
        best_score = current
        for i, j in zeros:
            work[i, j] = True
            score = badness(work)
            work[i, j] = False
            if score < best_score:
                best_score = score
                best_entry = (int(i), int(j))
                if score == 0:
                    break
        if best_entry is None:
            # No single flip helps: take the first zero (progress
            # toward the all-ones pattern, which is normalizable).
            i, j = zeros[0]
            best_entry = (int(i), int(j))
            work[i, j] = True
            best_score = badness(work)
        else:
            work[best_entry] = True
        added.append(best_entry)
        current = best_score
    return RepairPlan(
        strategy="add", entries=tuple(added), already_normalizable=False
    )
