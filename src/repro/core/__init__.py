"""Core environment model: ETC and ECS matrices.

A heterogeneous computing (HC) environment is represented either by an
*estimated time to compute* (ETC) matrix — entry ``(i, j)`` is the time
task type ``i`` takes on machine ``j`` when run alone — or by its
element-wise reciprocal, the *estimated computation speed* (ECS) matrix
(paper eq. 1).  :class:`ETCMatrix` and :class:`ECSMatrix` wrap the raw
arrays with task/machine labels, optional weighting factors (paper
eqs. 4 and 6), compatibility handling (``inf`` ETC ⇔ ``0`` ECS), and
what-if editing operations (add/remove task types and machines).
"""

from .environment import ECSMatrix, ETCMatrix, etc_to_ecs, ecs_to_etc
from .io import (
    load_etc_csv,
    save_etc_csv,
    load_environment_json,
    save_environment_json,
)

__all__ = [
    "ETCMatrix",
    "ECSMatrix",
    "etc_to_ecs",
    "ecs_to_etc",
    "load_etc_csv",
    "save_etc_csv",
    "load_environment_json",
    "save_environment_json",
]
