"""Serialization for HC environments.

Two formats:

* **CSV** — a plain rectangular table with machine names in the header
  row and task names in the first column, matching the layout of the
  paper's Figs. 6 and 7.  Incompatible ETC entries are written as
  ``inf``.
* **JSON** — a self-describing document that also carries the
  weighting-factor vectors and the matrix kind ("etc" or "ecs").
"""

from __future__ import annotations

import csv
import json
import os
from typing import Union

import numpy as np

from ..exceptions import MatrixShapeError, MatrixValueError
from .environment import ECSMatrix, ETCMatrix

__all__ = [
    "load_etc_csv",
    "save_etc_csv",
    "load_environment_json",
    "save_environment_json",
]

_PathLike = Union[str, os.PathLike]


def save_etc_csv(etc: ETCMatrix, path: _PathLike) -> None:
    """Write an :class:`ETCMatrix` as a labelled CSV table."""
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["task", *etc.machine_names])
        for name, row in zip(etc.task_names, etc.values):
            writer.writerow([name, *[repr(float(v)) for v in row]])


def load_etc_csv(path: _PathLike) -> ETCMatrix:
    """Read a labelled CSV table written by :func:`save_etc_csv`.

    The header row must be ``task,<machine names...>``; each body row is
    ``<task name>,<times...>`` where a time may be ``inf`` for an
    incompatible pair.
    """
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise MatrixShapeError(f"{path}: empty CSV file") from None
        if len(header) < 2:
            raise MatrixShapeError(
                f"{path}: header must contain at least one machine column"
            )
        machine_names = [h.strip() for h in header[1:]]
        task_names: list[str] = []
        rows: list[list[float]] = []
        for lineno, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(header):
                raise MatrixShapeError(
                    f"{path}:{lineno}: expected {len(header)} cells, got "
                    f"{len(row)}"
                )
            task_names.append(row[0].strip())
            try:
                rows.append([float(cell) for cell in row[1:]])
            except ValueError as exc:
                raise MatrixValueError(f"{path}:{lineno}: {exc}") from None
    if not rows:
        raise MatrixShapeError(f"{path}: no data rows")
    return ETCMatrix(
        np.asarray(rows, dtype=np.float64),
        task_names=task_names,
        machine_names=machine_names,
    )


def save_environment_json(
    matrix: ETCMatrix | ECSMatrix, path: _PathLike
) -> None:
    """Write an environment (either representation) as JSON.

    The document records the matrix kind, labels, values, and both
    weighting-factor vectors, so a round trip is lossless.
    """
    kind = "etc" if isinstance(matrix, ETCMatrix) else "ecs"
    values = [
        [("inf" if np.isinf(v) else float(v)) for v in row]
        for row in matrix.values
    ]
    doc = {
        "kind": kind,
        "task_names": list(matrix.task_names),
        "machine_names": list(matrix.machine_names),
        "task_weights": [float(w) for w in matrix.task_weights],
        "machine_weights": [float(w) for w in matrix.machine_weights],
        "values": values,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def load_environment_json(path: _PathLike) -> ETCMatrix | ECSMatrix:
    """Read an environment written by :func:`save_environment_json`."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    for key in ("kind", "values", "task_names", "machine_names"):
        if key not in doc:
            raise MatrixValueError(f"{path}: missing {key!r} field")
    values = np.asarray(
        [
            [np.inf if v == "inf" else float(v) for v in row]
            for row in doc["values"]
        ],
        dtype=np.float64,
    )
    cls: type[ETCMatrix] | type[ECSMatrix]
    if doc["kind"] == "etc":
        cls = ETCMatrix
    elif doc["kind"] == "ecs":
        cls = ECSMatrix
    else:
        raise MatrixValueError(
            f"{path}: kind must be 'etc' or 'ecs', got {doc['kind']!r}"
        )
    return cls(
        values,
        task_names=doc["task_names"],
        machine_names=doc["machine_names"],
        task_weights=doc.get("task_weights"),
        machine_weights=doc.get("machine_weights"),
    )
