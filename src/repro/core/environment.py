"""ETC and ECS matrix classes.

Both classes are thin, immutable-by-convention wrappers around a
``float64`` numpy array plus row (task type) and column (machine) labels
and optional weighting-factor vectors.  The arrays handed out by
``.values`` are read-only views so measure code can rely on the data not
changing underneath it; every editing operation returns a new object.

Conventions (DESIGN.md Section 5):

* ECS(i, j) = 1 / ETC(i, j); an incompatible task/machine pair is
  ``inf`` in the ETC matrix and ``0`` in the ECS matrix.
* Rows are task types, columns are machines — "T × M" throughout.
* All-zero ECS rows/columns (all-``inf`` ETC rows/columns) are rejected
  at construction (paper Section II-B).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .._validation import (
    as_ecs_array,
    as_etc_array,
    check_positive_scalar,
    check_weights,
)
from ..exceptions import DatasetError, MatrixShapeError, MatrixValueError

__all__ = ["ETCMatrix", "ECSMatrix", "etc_to_ecs", "ecs_to_etc"]


def etc_to_ecs(etc: np.ndarray) -> np.ndarray:
    """Convert a raw ETC array to a raw ECS array (paper eq. 1).

    ``inf`` execution times (incompatible pairs) map to speed ``0``.
    The input is validated; the output is a fresh array.
    """
    arr = as_etc_array(etc)
    with np.errstate(divide="ignore"):
        ecs = np.where(np.isinf(arr), 0.0, 1.0 / arr)
    return ecs


def ecs_to_etc(ecs: np.ndarray) -> np.ndarray:
    """Convert a raw ECS array to a raw ETC array.

    Speed ``0`` (incompatible pair) maps to time ``inf``.
    """
    arr = as_ecs_array(ecs)
    with np.errstate(divide="ignore"):
        etc = np.where(arr == 0.0, np.inf, 1.0 / np.where(arr == 0.0, 1.0, arr))
    return etc


def _default_names(prefix: str, count: int) -> tuple[str, ...]:
    return tuple(f"{prefix}{i + 1}" for i in range(count))


def _check_names(names, count: int, *, kind: str) -> tuple[str, ...]:
    if names is None:
        return _default_names("t" if kind == "task" else "m", count)
    names = tuple(str(n) for n in names)
    if len(names) != count:
        raise MatrixShapeError(
            f"expected {count} {kind} names, got {len(names)}"
        )
    if len(set(names)) != len(names):
        raise MatrixValueError(f"{kind} names must be unique")
    return names


def _resolve_indices(
    selection: Iterable[int | str] | None,
    names: Sequence[str],
    *,
    kind: str,
) -> list[int]:
    """Map a mixed list of indices/names to a list of integer indices."""
    if selection is None:
        return list(range(len(names)))
    index_of = {name: i for i, name in enumerate(names)}
    out: list[int] = []
    for item in selection:
        if isinstance(item, str):
            if item not in index_of:
                raise DatasetError(f"unknown {kind} {item!r}")
            out.append(index_of[item])
        else:
            idx = int(item)
            if not -len(names) <= idx < len(names):
                raise DatasetError(
                    f"{kind} index {idx} out of range for {len(names)} {kind}s"
                )
            out.append(idx % len(names))
    if not out:
        raise MatrixShapeError(f"selection of {kind}s must be non-empty")
    if len(set(out)) != len(out):
        raise MatrixValueError(f"selection of {kind}s contains duplicates")
    return out


class _BaseMatrix:
    """Shared labelled-matrix behaviour for ETC and ECS wrappers."""

    _kind = "matrix"

    def __init__(self, values, *, task_names=None, machine_names=None,
                 task_weights=None, machine_weights=None) -> None:
        arr = self._validate(values)
        arr.setflags(write=False)
        self._values = arr
        self._task_names = _check_names(task_names, arr.shape[0], kind="task")
        self._machine_names = _check_names(
            machine_names, arr.shape[1], kind="machine"
        )
        self._task_weights = check_weights(
            task_weights, arr.shape[0], name="task_weights"
        )
        self._task_weights.setflags(write=False)
        self._machine_weights = check_weights(
            machine_weights, arr.shape[1], name="machine_weights"
        )
        self._machine_weights.setflags(write=False)

    # -- subclass hook -------------------------------------------------
    @staticmethod
    def _validate(values) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- basic accessors -----------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying T × M array (read-only view)."""
        return self._values

    @property
    def shape(self) -> tuple[int, int]:
        return self._values.shape  # type: ignore[return-value]

    @property
    def n_tasks(self) -> int:
        """Number of task types T (rows)."""
        return self._values.shape[0]

    @property
    def n_machines(self) -> int:
        """Number of machines M (columns)."""
        return self._values.shape[1]

    @property
    def task_names(self) -> tuple[str, ...]:
        return self._task_names

    @property
    def machine_names(self) -> tuple[str, ...]:
        return self._machine_names

    @property
    def task_weights(self) -> np.ndarray:
        """Task-type weighting factors w_t (paper eq. 4/6), default ones."""
        return self._task_weights

    @property
    def machine_weights(self) -> np.ndarray:
        """Machine weighting factors w_m (paper eq. 4/6), default ones."""
        return self._machine_weights

    def task_index(self, task: int | str) -> int:
        """Resolve a task name or index to an integer row index."""
        return _resolve_indices([task], self._task_names, kind="task")[0]

    def machine_index(self, machine: int | str) -> int:
        """Resolve a machine name or index to an integer column index."""
        return _resolve_indices([machine], self._machine_names, kind="machine")[0]

    # -- editing (all return new objects) --------------------------------
    def _rebuild(self, values, task_idx: Sequence[int], machine_idx: Sequence[int]):
        return type(self)(
            values,
            task_names=[self._task_names[i] for i in task_idx],
            machine_names=[self._machine_names[j] for j in machine_idx],
            task_weights=self._task_weights[list(task_idx)],
            machine_weights=self._machine_weights[list(machine_idx)],
        )

    def submatrix(self, tasks=None, machines=None):
        """Extract the environment restricted to ``tasks`` × ``machines``.

        Either argument may mix integer indices and names; ``None`` keeps
        every row/column.  Used for the paper's Fig. 8 two-by-two SPEC
        extractions and for what-if studies.
        """
        ti = _resolve_indices(tasks, self._task_names, kind="task")
        mi = _resolve_indices(machines, self._machine_names, kind="machine")
        values = self._values[np.ix_(ti, mi)]
        return self._rebuild(values, ti, mi)

    def drop_tasks(self, tasks: Iterable[int | str]):
        """Remove the given task types (what-if: Section I applications)."""
        drop = set(_resolve_indices(list(tasks), self._task_names, kind="task"))
        keep = [i for i in range(self.n_tasks) if i not in drop]
        if not keep:
            raise MatrixShapeError("cannot drop every task type")
        return self._rebuild(self._values[keep, :], keep, range(self.n_machines))

    def drop_machines(self, machines: Iterable[int | str]):
        """Remove the given machines (what-if: Section I applications)."""
        drop = set(
            _resolve_indices(list(machines), self._machine_names, kind="machine")
        )
        keep = [j for j in range(self.n_machines) if j not in drop]
        if not keep:
            raise MatrixShapeError("cannot drop every machine")
        return self._rebuild(self._values[:, keep], range(self.n_tasks), keep)

    def add_task(self, name: str, row, *, weight: float = 1.0):
        """Append a task type with the given row of values."""
        row = np.asarray(row, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.n_machines:
            raise MatrixShapeError(
                f"new task row must have {self.n_machines} entries, got "
                f"{row.shape[0]}"
            )
        values = np.vstack([self._values, row[None, :]])
        return type(self)(
            values,
            task_names=[*self._task_names, str(name)],
            machine_names=self._machine_names,
            task_weights=np.append(
                self._task_weights, check_positive_scalar(weight, name="weight")
            ),
            machine_weights=self._machine_weights,
        )

    def add_machine(self, name: str, column, *, weight: float = 1.0):
        """Append a machine with the given column of values."""
        column = np.asarray(column, dtype=np.float64).reshape(-1)
        if column.shape[0] != self.n_tasks:
            raise MatrixShapeError(
                f"new machine column must have {self.n_tasks} entries, got "
                f"{column.shape[0]}"
            )
        values = np.hstack([self._values, column[:, None]])
        return type(self)(
            values,
            task_names=self._task_names,
            machine_names=[*self._machine_names, str(name)],
            task_weights=self._task_weights,
            machine_weights=np.append(
                self._machine_weights, check_positive_scalar(weight, name="weight")
            ),
        )

    def with_weights(self, *, task_weights=None, machine_weights=None):
        """Return a copy with new weighting-factor vectors.

        ``None`` keeps the current vector for that axis.
        """
        return type(self)(
            self._values,
            task_names=self._task_names,
            machine_names=self._machine_names,
            task_weights=(
                self._task_weights if task_weights is None else task_weights
            ),
            machine_weights=(
                self._machine_weights
                if machine_weights is None
                else machine_weights
            ),
        )

    # -- protocol support -------------------------------------------------
    def __array__(self, dtype=None, copy=None):
        arr = self._values
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        if copy:
            arr = arr.copy()
        return arr

    def __eq__(self, other) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return (
            self._task_names == other._task_names
            and self._machine_names == other._machine_names
            and np.array_equal(self._values, other._values)
            and np.array_equal(self._task_weights, other._task_weights)
            and np.array_equal(self._machine_weights, other._machine_weights)
        )

    def __hash__(self):  # mutable-ish container semantics: unhashable
        return NotImplemented  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(T={self.n_tasks}, M={self.n_machines}, "
            f"tasks={list(self._task_names[:3])}"
            f"{'...' if self.n_tasks > 3 else ''}, "
            f"machines={list(self._machine_names[:3])}"
            f"{'...' if self.n_machines > 3 else ''})"
        )

    def to_text(self, *, precision: int = 1, max_rows: int = 30) -> str:
        """Render the matrix as an aligned, labelled text table.

        ``inf`` entries print as ``-`` (incompatible pair); matrices
        taller than ``max_rows`` are elided in the middle.

        Examples
        --------
        >>> print(ETCMatrix([[1.5, 2.0]], task_names=["t"],
        ...                 machine_names=["a", "b"]).to_text())
        task    a    b
        t     1.5  2.0
        """

        def cell(value: float) -> str:
            if np.isinf(value):
                return "-"
            return f"{value:.{precision}f}"

        rows = list(range(self.n_tasks))
        elided = False
        if self.n_tasks > max_rows:
            head = max_rows // 2
            rows = rows[:head] + rows[-(max_rows - head):]
            elided = True
        body = [
            [self._task_names[i], *(cell(v) for v in self._values[i])]
            for i in rows
        ]
        header = ["task", *self._machine_names]
        widths = [
            max(len(header[c]), *(len(line[c]) for line in body))
            for c in range(len(header))
        ]
        lines = [
            "  ".join(
                header[c].ljust(widths[c]) if c == 0
                else header[c].rjust(widths[c])
                for c in range(len(header))
            )
        ]
        for k, line in enumerate(body):
            if elided and k == max_rows // 2:
                lines.append("...")
            lines.append(
                "  ".join(
                    line[c].ljust(widths[c]) if c == 0
                    else line[c].rjust(widths[c])
                    for c in range(len(header))
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


class ETCMatrix(_BaseMatrix):
    """An estimated-time-to-compute matrix (paper Section I).

    Entry ``(i, j)`` is the estimated time to run one task of type ``i``
    on machine ``j`` alone.  Entries are strictly positive; ``inf``
    marks a task/machine pair that is incompatible (the corresponding
    ECS entry is 0).

    Parameters
    ----------
    values : array-like, shape (T, M)
        Execution-time estimates.
    task_names, machine_names : sequence of str, optional
        Row/column labels; default ``t1..tT`` / ``m1..mM``.
    task_weights, machine_weights : array-like, optional
        Strictly positive weighting factors (paper eq. 4/6).

    Examples
    --------
    >>> etc = ETCMatrix([[1.0, 2.0], [4.0, 2.0]])
    >>> etc.to_ecs().values
    array([[1.  , 0.5 ],
           [0.25, 0.5 ]])
    """

    _kind = "ETC"

    @staticmethod
    def _validate(values) -> np.ndarray:
        return as_etc_array(values).copy()

    def to_ecs(self) -> "ECSMatrix":
        """The reciprocal ECS matrix (paper eq. 1), labels preserved."""
        with np.errstate(divide="ignore"):
            ecs = np.where(np.isinf(self._values), 0.0, 1.0 / self._values)
        return ECSMatrix(
            ecs,
            task_names=self._task_names,
            machine_names=self._machine_names,
            task_weights=self._task_weights,
            machine_weights=self._machine_weights,
        )

    def scaled(self, factor: float) -> "ETCMatrix":
        """Multiply every execution time by ``factor`` (unit change).

        The paper requires every heterogeneity measure to be invariant
        under this operation (property 2, Section I).
        """
        factor = check_positive_scalar(factor, name="factor")
        return type(self)(
            self._values * factor,
            task_names=self._task_names,
            machine_names=self._machine_names,
            task_weights=self._task_weights,
            machine_weights=self._machine_weights,
        )

    @property
    def compatibility(self) -> np.ndarray:
        """Boolean mask: True where the task type can run on the machine."""
        return np.isfinite(self._values)


class ECSMatrix(_BaseMatrix):
    """An estimated-computation-speed matrix (paper Section II-B).

    Entry ``(i, j)`` is the amount of task type ``i`` completed per unit
    time on machine ``j``; larger is faster.  Entries are finite and
    non-negative; 0 marks an incompatible pair.

    Examples
    --------
    >>> ecs = ECSMatrix([[4.0, 8.0, 5.0],
    ...                  [5.0, 9.0, 4.0],
    ...                  [6.0, 5.0, 2.0],
    ...                  [2.0, 1.0, 3.0]])
    >>> float(ecs.values[:, 0].sum())   # machine 1 performance (Fig. 1)
    17.0
    """

    _kind = "ECS"

    @staticmethod
    def _validate(values) -> np.ndarray:
        return as_ecs_array(values).copy()

    def to_etc(self) -> ETCMatrix:
        """The reciprocal ETC matrix, labels preserved."""
        with np.errstate(divide="ignore"):
            etc = np.where(
                self._values == 0.0,
                np.inf,
                1.0 / np.where(self._values == 0.0, 1.0, self._values),
            )
        return ETCMatrix(
            etc,
            task_names=self._task_names,
            machine_names=self._machine_names,
            task_weights=self._task_weights,
            machine_weights=self._machine_weights,
        )

    def scaled(self, factor: float) -> "ECSMatrix":
        """Multiply every speed by ``factor`` (unit change)."""
        factor = check_positive_scalar(factor, name="factor")
        return type(self)(
            self._values * factor,
            task_names=self._task_names,
            machine_names=self._machine_names,
            task_weights=self._task_weights,
            machine_weights=self._machine_weights,
        )

    @property
    def compatibility(self) -> np.ndarray:
        """Boolean mask: True where the task type can run on the machine."""
        return self._values > 0

    def weighted_values(self) -> np.ndarray:
        """The ECS array with both weighting factors applied
        (``w_t[i] * w_m[j] * ECS(i, j)``, the summand of eqs. 4 and 6)."""
        return (
            self._task_weights[:, None]
            * self._machine_weights[None, :]
            * self._values
        )
